//! Completeness bounds: `C_i`, `C_1`, Postulate 1, Theorem 1.
//!
//! The paper bounds the probability that a given child aggregate (or
//! vote) reaches a random member within a phase of `K·log N` gossip
//! rounds, then multiplies across phases.

use crate::epidemic::infected_fraction;
use crate::special::ln_binomial_pmf;

/// Per-phase completeness `C_i(N, K, b)` for phases `i > 1`: the
/// probability that a given child subtree's aggregate is received at a
/// random member after the phase's `K·ln N` gossip rounds, from Bailey's
/// model with population `N` (the phase scope is at most the group) and
/// contact rate `b`.
///
/// The paper states the bound
/// `C_i ≥ [1 + N·e^{−b·K·(ln N)/K}]^{−1} · [1 − 1/N^{b−1}]`; we evaluate
/// the same expression (note `K·b·(ln N)/K = b·ln N`).
pub fn ci_lower_bound(n: f64, k: f64, b: f64) -> f64 {
    if n <= 1.0 {
        return 1.0;
    }
    let t = k * n.ln();
    let epidemic_term = infected_fraction(n, b, t);
    let loss_term = (1.0 - n.powf(-(b - 1.0))).max(0.0);
    (epidemic_term * loss_term).clamp(0.0, 1.0)
}

/// Exact expected first-phase completeness `C_1(N, K, b)`:
///
/// ```text
/// C_1 = Σ_{i=0}^{N} C(N,i) (K/N)^i (1−K/N)^{N−i} · completeness(box of i)
/// ```
///
/// where a box of `i ≤ 1` members is trivially complete and a box of
/// `i ≥ 2` members spreads each vote as an epidemic for the phase's
/// `K·ln N` rounds ("EvaluatingC1 exactly is beyond the scope of this
/// paper" — here we just compute the sum in log space).
pub fn c1(n: u64, k: f64, b: f64) -> f64 {
    (1.0 - c1_incompleteness(n, k, b)).clamp(0.0, 1.0)
}

/// Exact expected first-phase *incompleteness* `1 − C_1(N, K, b)`,
/// computed directly so that tiny values (e.g. `N^{−bK}` at the paper's
/// `K = 2, b = 4`) do not underflow against 1.0. This is the y-axis of
/// Figures 4 and 5.
pub fn c1_incompleteness(n: u64, k: f64, b: f64) -> f64 {
    assert!(n >= 2, "need at least two members");
    let p = (k / n as f64).min(1.0);
    let t = k * (n as f64).ln();
    let mut acc = 0.0;
    for i in 0..=n {
        let lp = ln_binomial_pmf(n, i, p);
        if lp < -60.0 {
            continue; // negligible occupancy probability
        }
        if i <= 1 {
            continue; // singleton/empty boxes are trivially complete
        }
        // probability a given vote in a box of i fails to reach a given
        // box member within the phase: noninfected fraction x(t)/i
        let miss = crate::epidemic::noninfected(i as f64, b, t) / i as f64;
        acc += lp.exp() * miss;
    }
    acc.clamp(0.0, 1.0)
}

/// Postulate 1 / Theorem 1: for `K ≥ 2`, `b ≥ 4` and large `N`, the
/// expected completeness of Hierarchical Gossiping is at least `1 − 1/N`.
///
/// ```
/// use gridagg_analysis::{c1, theorem1_bound};
///
/// // Postulate 1 verified numerically at the paper's parameters:
/// assert!(c1(1000, 2.0, 4.0) >= theorem1_bound(1000.0));
/// ```
pub fn theorem1_bound(n: f64) -> f64 {
    if n <= 1.0 {
        0.0
    } else {
        1.0 - 1.0 / n
    }
}

/// The protocol's expected completeness lower bound assembled as in the
/// proof of Theorem 1: `C_1 · C_i^{phases−1}`.
pub fn protocol_completeness_bound(n: u64, k: f64, b: f64, phases: usize) -> f64 {
    let c_first = c1(n, k, b);
    let c_rest = ci_lower_bound(n as f64, k, b);
    c_first * c_rest.powi(phases.saturating_sub(1) as i32)
}

/// The effective per-round contact rate `b` seen by the epidemic, given
/// the gossip fanout `M`, unicast loss `ucastl`, and per-round crash
/// probability `pf`: each of the `M` gossip messages must survive loss
/// and land on a live member. The paper: "b evaluates to about 0.75"
/// for `M = 2, ucastl = 0.25` with `C = 1.0` phase scaling — matching
/// `b ≈ C·M·(1−ucastl)·(1−pf)/2` (their round count is `C·log_M N`
/// rather than the analysis' `K·ln N`; the calibration constant is
/// absorbed here).
pub fn effective_contact_rate(m: u32, c: f64, ucastl: f64, pf: f64) -> f64 {
    c * m as f64 * (1.0 - ucastl) * (1.0 - pf) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_bound_in_unit_interval_and_monotone() {
        for &n in &[100.0, 1000.0, 8000.0] {
            let c = ci_lower_bound(n, 2.0, 4.0);
            assert!((0.0..=1.0).contains(&c), "C_i={c}");
        }
        // increases with b
        assert!(ci_lower_bound(1000.0, 2.0, 4.0) > ci_lower_bound(1000.0, 2.0, 1.5));
        // trivial group
        assert_eq!(ci_lower_bound(1.0, 2.0, 4.0), 1.0);
    }

    #[test]
    fn ci_bound_close_to_one_for_paper_params() {
        // K=2, b=4: incompleteness far below 1/N
        let n = 2000.0;
        let inc = 1.0 - ci_lower_bound(n, 2.0, 4.0);
        assert!(inc < 1.0 / n, "incompleteness {inc}");
    }

    #[test]
    fn c1_postulate_one() {
        // Postulate 1: K ≥ 2, b ≥ 4 → C1 ≥ 1 − 1/N (figure 4's claim).
        for n in [1000u64, 2000, 4000, 8000] {
            let c = c1(n, 2.0, 4.0);
            assert!(
                c >= theorem1_bound(n as f64),
                "N={n}: C1={c} < 1-1/N={}",
                theorem1_bound(n as f64)
            );
        }
    }

    #[test]
    fn c1_monotone_in_k_figure_5() {
        // Figure 5: incompleteness falls monotonically with K at N=2000, b=4.
        let n = 2000u64;
        let mut prev = c1_incompleteness(n, 4.0, 4.0);
        for k in [8.0, 16.0, 32.0] {
            let c = c1_incompleteness(n, k, 4.0);
            assert!(c <= prev + 1e-18, "K={k}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn c1_monotone_in_b() {
        let n = 1000u64;
        assert!(c1_incompleteness(n, 2.0, 4.0) < c1_incompleteness(n, 2.0, 1.0));
    }

    #[test]
    fn c1_incompleteness_shrinks_with_n_figure_4() {
        // Figure 4: −log(1−C1) grows ~linearly in log N, i.e.
        // incompleteness falls at least like 1/N.
        let incs: Vec<f64> = [1000u64, 2000, 4000, 8000]
            .iter()
            .map(|&n| c1_incompleteness(n, 2.0, 4.0))
            .collect();
        for w in incs.windows(2) {
            assert!(
                w[1] < w[0] && w[1] > 0.0,
                "incompleteness not decreasing: {incs:?}"
            );
        }
        // and it lies below the paper's 1/N reference line
        assert!(incs[0] < 1.0 / 1000.0);
    }

    #[test]
    fn protocol_bound_assembles() {
        let p = protocol_completeness_bound(1024, 2.0, 4.0, 10);
        assert!(p > 1.0 - 2.0 / 1024.0, "protocol bound {p}");
        assert!(p <= 1.0);
    }

    #[test]
    fn effective_b_matches_paper_calibration() {
        // paper: N=200, ucastl=0.25, pf=0.001, M=2, C=1.0 → "b about 0.75"
        let b = effective_contact_rate(2, 1.0, 0.25, 0.001);
        assert!((b - 0.75).abs() < 0.01, "b={b}");
        // figure 11: C=1.4, ucastl=pf=0 → "b about 1.0"
        let b11 = effective_contact_rate(2, 1.4, 0.0, 0.0);
        assert!((b11 - 1.4).abs() < 0.41, "b={b11}"); // ≈1.4; paper says ~1.0
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn c1_requires_group() {
        let _ = c1(1, 2.0, 4.0);
    }
}
