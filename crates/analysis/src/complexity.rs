//! Closed-form complexity predictions (§6.3).
//!
//! "Time Complexity: Each phase of this algorithm lasts for K·logN
//! gossip rounds … the time complexity of this algorithm is O(log²N).
//! Message complexity: Each member gossips at a constant rate in each
//! gossip round. Hence, the message complexity of this algorithm is
//! O(N·log²N)."
//!
//! These functions evaluate the *simulation-parameterised* versions of
//! those formulas (phases, `⌈C·log_M N⌉` rounds per phase, fanout `M`),
//! so experiments can assert measured counts stay within small constant
//! factors of the prediction — the "poly-logarithmically sub-optimal"
//! claim, quantified.

/// Number of protocol phases for `n` members and box constant `k`:
/// `depth + 1` with `depth = max(1, round(log_k(n/k)))` (the
/// generalised `log_K N`).
pub fn phases(n: usize, k: u8) -> usize {
    assert!(k >= 2 && n >= 2, "k >= 2 and n >= 2 required");
    let ratio = n as f64 / k as f64;
    let depth = if ratio <= 1.0 {
        1
    } else {
        (ratio.ln() / (k as f64).ln()).round().max(1.0) as usize
    };
    depth + 1
}

/// Rounds per phase in the §7 simulations: `⌈C·log_M N⌉` (base
/// `max(M, 2)`).
pub fn rounds_per_phase(n: usize, fanout: u32, c: f64) -> u32 {
    let base = fanout.max(2) as f64;
    ((c * (n.max(2) as f64).ln() / base.ln()).ceil() as u32).max(1)
}

/// Predicted total rounds for one run: `phases × rounds_per_phase` —
/// the paper's `O(log²N)` time complexity, with constants.
pub fn expected_rounds(n: usize, k: u8, fanout: u32, c: f64) -> u64 {
    phases(n, k) as u64 * rounds_per_phase(n, fanout, c) as u64
}

/// Predicted total *push* messages for one run: every member sends `M`
/// gossip messages per round for the whole schedule — the paper's
/// `O(N·log²N)` message complexity, with constants. Reactive replies
/// (the "gossip with" exchange) at most double this.
pub fn expected_messages(n: usize, k: u8, fanout: u32, c: f64) -> u64 {
    n as u64 * expected_rounds(n, k, fanout, c) * fanout as u64
}

/// The optimum limits stated in §1 for any protocol under the model:
/// `O(N)` messages, `O(1)` time, completeness 1. Returns the
/// polylogarithmic factor by which hierarchical gossip exceeds the
/// message optimum: `expected_messages / n`.
pub fn suboptimality_factor(n: usize, k: u8, fanout: u32, c: f64) -> f64 {
    expected_messages(n, k, fanout, c) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_match_hierarchy_crate_shape() {
        // N=8, K=2 → 3 phases (paper example); N=200, K=4 → 4
        assert_eq!(phases(8, 2), 3);
        assert_eq!(phases(200, 4), 4);
        assert_eq!(phases(4, 4), 2);
    }

    #[test]
    fn rounds_per_phase_matches_paper_defaults() {
        // N=200, M=2, C=1 → ceil(log2 200) = 8
        assert_eq!(rounds_per_phase(200, 2, 1.0), 8);
        assert_eq!(rounds_per_phase(200, 2, 1.4), 11);
        assert_eq!(rounds_per_phase(2, 2, 1.0), 1);
    }

    #[test]
    fn time_is_polylog() {
        // rounds grow ~log²: doubling N many times grows rounds slowly
        let r200 = expected_rounds(200, 4, 2, 1.0);
        let r3200 = expected_rounds(3200, 4, 2, 1.0);
        assert!(r3200 < 3 * r200, "{r3200} vs {r200}");
        assert!(r3200 > r200);
    }

    #[test]
    fn messages_are_n_polylog() {
        let m200 = expected_messages(200, 4, 2, 1.0);
        let m3200 = expected_messages(3200, 4, 2, 1.0);
        // 16× members → messages grow by 16× times a polylog factor < 3
        let growth = m3200 as f64 / m200 as f64;
        assert!(growth > 16.0 && growth < 48.0, "growth {growth}");
    }

    #[test]
    fn suboptimality_is_log_squared_ish() {
        let f = suboptimality_factor(200, 4, 2, 1.0);
        // phases(4) × rpp(8) × M(2) = 64
        assert_eq!(f, 64.0);
        // and grows slowly with N
        let f_big = suboptimality_factor(3200, 4, 2, 1.0);
        assert!(f_big < 3.0 * f);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn phases_validates() {
        let _ = phases(8, 1);
    }
}
