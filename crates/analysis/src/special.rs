//! Special functions: log-gamma (Lanczos) and log-binomial coefficients.
//!
//! The exact first-phase completeness `C_1(N,K,b)` is a binomial sum over
//! grid-box occupancies with `N` up to several thousand; computing
//! `C(N,i)·p^i·(1−p)^{N−i}` naively overflows, so everything is done in
//! log space.

/// Lanczos approximation coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~1e-10 relative over the range used here.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of the binomial coefficient `C(n, k)`; `-inf` for `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Log-space binomial pmf: `ln P[X = k]` for `X ~ Binomial(n, p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn ln_binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..=n).map(|i| i as f64).product();
            assert!((ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_choose(10, 0) - 0.0).abs() < 1e-9);
        assert!((ln_choose(10, 10) - 0.0).abs() < 1e-9);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_large_no_overflow() {
        let v = ln_choose(8000, 4000);
        assert!(v.is_finite() && v > 5000.0); // ≈ 8000·ln2 ≈ 5545
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 50u64;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| ln_binomial_pmf(n, k, p).exp()).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn binomial_pmf_edges() {
        assert_eq!(ln_binomial_pmf(10, 0, 0.0), 0.0);
        assert_eq!(ln_binomial_pmf(10, 3, 0.0), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(10, 10, 1.0), 0.0);
        assert_eq!(ln_binomial_pmf(10, 9, 1.0), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(5, 6, 0.5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_mean_mode() {
        // pmf at the mean should dominate pmf far away
        let at_mean = ln_binomial_pmf(100, 30, 0.3);
        let far = ln_binomial_pmf(100, 80, 0.3);
        assert!(at_mean > far + 10.0);
    }
}
