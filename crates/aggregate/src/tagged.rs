//! Aggregates tagged with their contributor sets.
//!
//! [`Tagged`] pairs an [`Aggregate`] value with the [`VoteSet`] of
//! members whose votes it contains, enforcing the paper's *no double
//! counting* constraint at merge time and enabling exact completeness
//! measurement at the end of a run.

use crate::voteset::VoteSet;
use crate::Aggregate;

/// Error returned by [`Tagged::try_merge`] when the two aggregates share
/// at least one contributing member — merging them would count a vote
/// twice, which the paper's problem statement forbids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleCount;

impl std::fmt::Display for DoubleCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("aggregates share contributing members (no-double-counting violation)")
    }
}

impl std::error::Error for DoubleCount {}

/// An aggregate value together with the set of members it covers.
///
/// An empty `Tagged` (no votes yet) has `aggregate() == None`; the first
/// merge or vote initialises it. See the crate-level example.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged<A> {
    agg: Option<A>,
    votes: VoteSet,
}

impl<A: Aggregate> Tagged<A> {
    /// An empty aggregate sized for a group of `n` members, with an
    /// **exact** contributor set.
    pub fn empty(n: usize) -> Self {
        Tagged {
            agg: None,
            votes: VoteSet::new(n),
        }
    }

    /// The partial aggregate for a single member's vote, with an
    /// **exact** contributor set.
    pub fn from_vote(member: usize, vote: f64, n: usize) -> Self {
        Tagged {
            agg: Some(A::from_vote(vote)),
            votes: VoteSet::singleton(member, n),
        }
    }

    /// An empty aggregate in the contributor representation
    /// [`VoteSet::for_scale`] picks for `n`: exact up to
    /// [`crate::EXACT_TRACK_MAX`], counted above it.
    ///
    /// Only for protocols whose merges are structurally disjoint; see
    /// the [`crate::voteset`] module docs.
    pub fn empty_for_scale(n: usize) -> Self {
        Tagged {
            agg: None,
            votes: VoteSet::for_scale(n),
        }
    }

    /// The partial aggregate for a single member's vote, in the
    /// contributor representation [`VoteSet::for_scale`] picks for `n`.
    pub fn from_vote_for_scale(member: usize, vote: f64, n: usize) -> Self {
        Tagged {
            agg: Some(A::from_vote(vote)),
            votes: VoteSet::singleton_for_scale(member, n),
        }
    }

    /// Reassemble from a value and its contributor set (wire codec).
    ///
    /// # Errors
    ///
    /// Returns [`DoubleCount`] when the pair is inconsistent (a
    /// non-empty contributor set without a value) — reusing the crate's
    /// error type as "invalid vote accounting".
    pub fn from_parts(agg: Option<A>, votes: crate::VoteSet) -> Result<Self, DoubleCount> {
        if agg.is_none() && !votes.is_empty() {
            return Err(DoubleCount);
        }
        Ok(Tagged { agg, votes })
    }

    /// The composed aggregate value, or `None` if no votes are included.
    pub fn aggregate(&self) -> Option<&A> {
        self.agg.as_ref()
    }

    /// The contributing members.
    pub fn votes(&self) -> &VoteSet {
        &self.votes
    }

    /// Number of votes included.
    pub fn vote_count(&self) -> usize {
        self.votes.len()
    }

    /// The paper's *completeness*: fraction of the `n` group votes
    /// included in this aggregate.
    pub fn completeness(&self, n: usize) -> f64 {
        self.votes.coverage(n)
    }

    /// Compose with another partial aggregate over a disjoint vote set.
    ///
    /// # Errors
    ///
    /// Returns [`DoubleCount`] (leaving `self` unchanged) if the two
    /// aggregates share any contributing member.
    pub fn try_merge(&mut self, other: &Tagged<A>) -> Result<(), DoubleCount> {
        if !self.votes.is_disjoint(&other.votes) {
            return Err(DoubleCount);
        }
        #[cfg(feature = "strict-invariants")]
        let expected_len = self.votes.len() + other.votes.len();
        match (&mut self.agg, &other.agg) {
            (_, None) => {}
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs.clone()),
        }
        self.votes.union_with(&other.votes);
        crate::strict_assert!(
            self.votes.len() == expected_len,
            "strict-invariants: merged vote accounting lost or duplicated a contributor \
             ({} != {expected_len})",
            self.votes.len()
        );
        crate::strict_assert!(
            self.agg.is_some() || self.votes.is_empty(),
            "strict-invariants: non-empty contributor set without an aggregate value"
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::{Average, Min};

    #[test]
    fn from_vote_and_completeness() {
        let t = Tagged::<Average>::from_vote(3, 12.0, 10);
        assert_eq!(t.vote_count(), 1);
        assert!((t.completeness(10) - 0.1).abs() < 1e-12);
        assert_eq!(t.aggregate().unwrap().summary(), 12.0);
        assert!(t.votes().contains(3));
    }

    #[test]
    fn merge_disjoint_composes() {
        let mut a = Tagged::<Average>::from_vote(0, 10.0, 4);
        let b = Tagged::from_vote(1, 30.0, 4);
        a.try_merge(&b).unwrap();
        assert_eq!(a.aggregate().unwrap().summary(), 20.0);
        assert_eq!(a.vote_count(), 2);
    }

    #[test]
    fn merge_overlapping_rejected_and_unchanged() {
        let mut a = Tagged::<Average>::from_vote(0, 10.0, 4);
        a.try_merge(&Tagged::from_vote(1, 30.0, 4)).unwrap();
        let before = a.clone();
        let overlapping = Tagged::from_vote(1, 99.0, 4);
        assert_eq!(a.try_merge(&overlapping), Err(DoubleCount));
        assert_eq!(a, before, "failed merge must not mutate");
    }

    #[test]
    fn empty_merges_are_identity() {
        let mut a = Tagged::<Min>::empty(4);
        assert!(a.aggregate().is_none());
        a.try_merge(&Tagged::empty(4)).unwrap();
        assert!(a.aggregate().is_none());
        a.try_merge(&Tagged::from_vote(2, 5.0, 4)).unwrap();
        assert_eq!(a.aggregate().unwrap().summary(), 5.0);
        // merging an empty into a non-empty keeps the value
        a.try_merge(&Tagged::empty(4)).unwrap();
        assert_eq!(a.aggregate().unwrap().summary(), 5.0);
        assert_eq!(a.vote_count(), 1);
    }

    #[test]
    fn hierarchical_grouping_matches_flat() {
        // Figure 2: f over {M7,M3,M8}, {M6,M5} then composed equals flat fold.
        let votes = [7.0, 3.0, 8.0, 6.0, 5.0];
        let n = 5;
        let mut left = Tagged::<Average>::from_vote(0, votes[0], n);
        left.try_merge(&Tagged::from_vote(1, votes[1], n)).unwrap();
        left.try_merge(&Tagged::from_vote(2, votes[2], n)).unwrap();
        let mut right = Tagged::<Average>::from_vote(3, votes[3], n);
        right.try_merge(&Tagged::from_vote(4, votes[4], n)).unwrap();
        left.try_merge(&right).unwrap();
        let direct = votes.iter().sum::<f64>() / votes.len() as f64;
        assert!((left.aggregate().unwrap().summary() - direct).abs() < 1e-12);
        assert_eq!(left.completeness(n), 1.0);
    }

    #[test]
    fn double_count_displays() {
        assert!(DoubleCount.to_string().contains("double"));
    }
}
