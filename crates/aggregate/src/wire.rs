//! Wire encoding for aggregate values.
//!
//! The paper's scalability argument rests on "all messages sent over the
//! network are constant size bounded … larger than the byte-size of
//! individual votes and any composable function evaluation". This module
//! makes that concrete: every [`Aggregate`] implementation here
//! serializes to at most [`MAX_AGGREGATE_WIRE_SIZE`] bytes, independent
//! of the group size — and the tests enforce it.
//!
//! Note the contributor [`crate::VoteSet`] is deliberately *not*
//! encodable: it is simulation instrumentation, and would be O(N) on the
//! wire.

use bytes::{Buf, BufMut};

use crate::funcs::{
    All, Any, Average, Count, Histogram16, Max, MeanVar, Min, Sum, TopK, HISTOGRAM_BUCKETS, TOP_K,
};
use crate::Aggregate;

/// Upper bound (bytes) on any encoded aggregate value: the histogram is
/// the largest at `2·8 (range) + 16·8 (buckets) = 144`, plus slack.
pub const MAX_AGGREGATE_WIRE_SIZE: usize = 160;

/// Errors from decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A length or discriminant field was invalid.
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("buffer too short for aggregate value"),
            WireError::Malformed => f.write_str("malformed aggregate encoding"),
        }
    }
}

impl std::error::Error for WireError {}

/// An [`Aggregate`] with a binary wire form.
///
/// Implementations append to any [`BufMut`] and decode from any [`Buf`]
/// (C-RW-VALUE: pass `&mut buf` when you need to keep using the buffer).
pub trait WireAggregate: Aggregate {
    /// Append the encoded value to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Decode a value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or malformed input.
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError>;

    /// Exact encoded size in bytes. Must be `<=`
    /// [`MAX_AGGREGATE_WIRE_SIZE`] for every value.
    fn wire_size(&self) -> usize;
}

fn get_f64<B: Buf>(buf: &mut B) -> Result<f64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_f64())
}

fn get_u64<B: Buf>(buf: &mut B) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64())
}

impl WireAggregate for Average {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64(self.sum());
        buf.put_u64(self.count());
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let sum = get_f64(buf)?;
        let count = get_u64(buf)?;
        if count == 0 {
            return Err(WireError::Malformed);
        }
        Ok(Average::from_parts(sum, count))
    }

    fn wire_size(&self) -> usize {
        16
    }
}

impl WireAggregate for Sum {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64(self.summary());
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(Sum::from_vote(get_f64(buf)?))
    }

    fn wire_size(&self) -> usize {
        8
    }
}

impl WireAggregate for Min {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64(self.summary());
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(Min::from_vote(get_f64(buf)?))
    }

    fn wire_size(&self) -> usize {
        8
    }
}

impl WireAggregate for Max {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64(self.summary());
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(Max::from_vote(get_f64(buf)?))
    }

    fn wire_size(&self) -> usize {
        8
    }
}

impl WireAggregate for Count {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        // the raw count, not `summary() as u64`: no float round-trip on
        // the wire (lint rule D004)
        buf.put_u64(self.value());
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let n = get_u64(buf)?;
        if n == 0 {
            return Err(WireError::Malformed);
        }
        Ok(Count::from_parts(n))
    }

    fn wire_size(&self) -> usize {
        8
    }
}

impl WireAggregate for Histogram16 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        for &b in self.buckets() {
            buf.put_u64(b);
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for c in &mut counts {
            *c = get_u64(buf)?;
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(WireError::Malformed);
        }
        Ok(Histogram16::from_parts(counts))
    }

    fn wire_size(&self) -> usize {
        HISTOGRAM_BUCKETS * 8
    }
}

impl WireAggregate for TopK {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.items().len() as u8);
        for &v in self.items() {
            buf.put_f64(v);
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let len = buf.get_u8() as usize;
        if len == 0 || len > TOP_K {
            return Err(WireError::Malformed);
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(get_f64(buf)?);
        }
        Ok(TopK::from_parts(items))
    }

    fn wire_size(&self) -> usize {
        1 + self.items().len() * 8
    }
}

impl WireAggregate for MeanVar {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.count());
        buf.put_f64(self.mean());
        buf.put_f64(if self.count() == 0 {
            0.0
        } else {
            self.variance() * crate::conv::count_to_f64(self.count())
        });
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let count = get_u64(buf)?;
        let mean = get_f64(buf)?;
        let m2 = get_f64(buf)?;
        if count == 0 || m2 < 0.0 || !m2.is_finite() {
            return Err(WireError::Malformed);
        }
        Ok(MeanVar::from_parts(count, mean, m2))
    }

    fn wire_size(&self) -> usize {
        24
    }
}

impl WireAggregate for Any {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(u8::from(self.holds()));
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(Any::from_vote(0.0)),
            1 => Ok(Any::from_vote(1.0)),
            _ => Err(WireError::Malformed),
        }
    }

    fn wire_size(&self) -> usize {
        1
    }
}

impl WireAggregate for All {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(u8::from(self.holds()));
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(All::from_vote(0.0)),
            1 => Ok(All::from_vote(1.0)),
            _ => Err(WireError::Malformed),
        }
    }

    fn wire_size(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip<A: WireAggregate>(a: &A) -> A {
        let mut buf = BytesMut::new();
        a.encode(&mut buf);
        assert_eq!(buf.len(), a.wire_size(), "declared size mismatch");
        assert!(a.wire_size() <= MAX_AGGREGATE_WIRE_SIZE);
        let mut rd = buf.freeze();
        let out = A::decode(&mut rd).expect("decode");
        assert_eq!(rd.remaining(), 0, "trailing bytes");
        out
    }

    fn fold<A: Aggregate>(votes: &[f64]) -> A {
        let mut acc = A::from_vote(votes[0]);
        for &v in &votes[1..] {
            acc.merge(&A::from_vote(v));
        }
        acc
    }

    const VOTES: [f64; 5] = [3.5, -2.0, 7.25, 0.0, 11.0];

    #[test]
    fn average_roundtrip() {
        let a: Average = fold(&VOTES);
        let b = roundtrip(&a);
        assert_eq!(a.count(), b.count());
        assert!((a.sum() - b.sum()).abs() < 1e-9);
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(roundtrip(&fold::<Sum>(&VOTES)), fold::<Sum>(&VOTES));
        assert_eq!(roundtrip(&fold::<Min>(&VOTES)), fold::<Min>(&VOTES));
        assert_eq!(roundtrip(&fold::<Max>(&VOTES)), fold::<Max>(&VOTES));
        assert_eq!(roundtrip(&fold::<Count>(&VOTES)), fold::<Count>(&VOTES));
    }

    #[test]
    fn histogram_roundtrip_preserves_buckets() {
        let h: Histogram16 = fold(&[5.0, 15.0, 15.0, 95.0]);
        let h2 = roundtrip(&h);
        assert_eq!(h.buckets(), h2.buckets());
    }

    #[test]
    fn topk_roundtrip() {
        let t: TopK = fold(&VOTES);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn meanvar_roundtrip_close() {
        let mv: MeanVar = fold(&VOTES);
        let mv2 = roundtrip(&mv);
        assert_eq!(mv.count(), mv2.count());
        assert!((mv.mean() - mv2.mean()).abs() < 1e-9, "{mv:?} vs {mv2:?}");
        assert!(
            (mv.variance() - mv2.variance()).abs() < 1e-6,
            "{} vs {}",
            mv.variance(),
            mv2.variance()
        );
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = BytesMut::new();
        fold::<Average>(&VOTES).encode(&mut buf);
        let mut short = buf.freeze().slice(0..10);
        assert_eq!(Average::decode(&mut short), Err(WireError::Truncated));
        let mut empty = bytes::Bytes::new();
        assert_eq!(Sum::decode(&mut empty), Err(WireError::Truncated));
        assert_eq!(TopK::decode(&mut empty), Err(WireError::Truncated));
    }

    #[test]
    fn malformed_input_errors() {
        // zero-count average
        let mut buf = BytesMut::new();
        buf.put_f64(1.0);
        buf.put_u64(0);
        assert_eq!(
            Average::decode(&mut buf.freeze()),
            Err(WireError::Malformed)
        );
        // topk with oversized length
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        assert_eq!(TopK::decode(&mut buf.freeze()), Err(WireError::Malformed));
    }

    #[test]
    fn sizes_are_constant_bounded() {
        // wire size must not grow with the number of merged votes
        let small: Average = fold(&VOTES[..2]);
        let big: Average = fold(&VOTES);
        assert_eq!(small.wire_size(), big.wire_size());
        let h_small: Histogram16 = fold(&VOTES[..2]);
        let h_big: Histogram16 = fold(&VOTES);
        assert_eq!(h_small.wire_size(), h_big.wire_size());
    }

    #[test]
    fn bool_roundtrips() {
        assert_eq!(roundtrip(&Any::from_vote(1.0)), Any::from_vote(1.0));
        assert_eq!(roundtrip(&Any::from_vote(0.0)), Any::from_vote(0.0));
        assert_eq!(roundtrip(&All::from_vote(0.0)), All::from_vote(0.0));
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        assert_eq!(Any::decode(&mut buf.freeze()), Err(WireError::Malformed));
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("short"));
        assert!(WireError::Malformed.to_string().contains("malformed"));
    }

    #[test]
    fn tagged_roundtrips_exact_and_counted() {
        let n = crate::EXACT_TRACK_MAX + 1;
        let mut counted = crate::Tagged::<Average>::from_vote_for_scale(3, 5.0, n);
        counted
            .try_merge(&crate::Tagged::from_vote_for_scale(9, 7.0, n))
            .unwrap();
        assert!(!counted.votes().is_exact());
        let mut exact = crate::Tagged::<Average>::from_vote(3, 5.0, 128);
        exact
            .try_merge(&crate::Tagged::from_vote(9, 7.0, 128))
            .unwrap();
        for t in [&exact, &counted] {
            let mut buf = BytesMut::new();
            encode_tagged(t, &mut buf);
            let back: crate::Tagged<Average> = decode_tagged(&mut buf.freeze()).unwrap();
            assert_eq!(&back, t);
            assert_eq!(back.vote_count(), 2);
        }
        // the counted encoding is count-only: constant size
        let mut big = crate::Tagged::<Average>::empty_for_scale(n);
        for m in 0..100 {
            big.try_merge(&crate::Tagged::from_vote_for_scale(m, 1.0, n))
                .unwrap();
        }
        let (mut a, mut b) = (BytesMut::new(), BytesMut::new());
        encode_tagged(&counted, &mut a);
        encode_tagged(&big, &mut b);
        assert_eq!(a.len(), b.len());
    }
}

/// Encode a [`Tagged`](crate::Tagged) aggregate *including its
/// contributor set*.
///
/// The contributor bitmap is O(N/8) bytes, so this codec intentionally
/// exceeds the constant-size wire model — it exists for the real-network
/// runtime and test transports, where exact completeness measurement is
/// worth the bytes. A production deployment would ship only the
/// [`WireAggregate`] value (see the module docs).
///
/// Counted contributor sets (see [`crate::VoteSet::for_scale`]) have no
/// bitmap; they are written as the sentinel word count `u16::MAX`
/// followed by the `u64` contributor count. Exact sets never reach the
/// sentinel: they are capped at [`crate::EXACT_TRACK_MAX`] members
/// (256 words) at every `for_scale` construction site.
pub fn encode_tagged<A: WireAggregate, B: BufMut>(tagged: &crate::Tagged<A>, buf: &mut B) {
    match tagged.aggregate() {
        Some(agg) => {
            buf.put_u8(1);
            agg.encode(buf);
        }
        None => buf.put_u8(0),
    }
    let votes = tagged.votes();
    if votes.is_exact() {
        let words = votes.words();
        buf.put_u16(words.len() as u16);
        for &w in words {
            buf.put_u64(w);
        }
    } else {
        buf.put_u16(u16::MAX);
        buf.put_u64(votes.len() as u64);
    }
}

/// Decode a [`Tagged`](crate::Tagged) aggregate written by
/// [`encode_tagged`].
///
/// # Errors
///
/// Returns [`WireError`] on truncated or malformed input.
pub fn decode_tagged<A: WireAggregate, B: Buf>(buf: &mut B) -> Result<crate::Tagged<A>, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let agg = match buf.get_u8() {
        0 => None,
        1 => Some(A::decode(buf)?),
        _ => return Err(WireError::Malformed),
    };
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let n_words = buf.get_u16() as usize;
    let votes = if n_words == u16::MAX as usize {
        // counted contributor set: sentinel word count, then the count
        if buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let count = buf.get_u64();
        let count = usize::try_from(count).map_err(|_| WireError::Malformed)?;
        crate::VoteSet::counted(count)
    } else {
        if buf.remaining() < n_words * 8 {
            return Err(WireError::Truncated);
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(buf.get_u64());
        }
        crate::VoteSet::from_words(words)
    };
    crate::Tagged::from_parts(agg, votes).map_err(|_| WireError::Malformed)
}

/// Memoizes the encoded wire form of a value until the value changes.
///
/// Protocols re-send the *same* aggregate many times between state
/// changes (gossip fanout, straggler replies), and re-encoding an
/// unchanged value is pure waste on the hot path. `EncodeMemo` keeps
/// the last value alongside its encoded bytes and only re-runs the
/// encoder when handed something different.
///
/// The encoder is passed per call rather than stored, so one memo can
/// serve any `(value, codec)` pairing — e.g. a full
/// `Payload` via `codec::encode` — as long as the same encoder is used
/// consistently for a given memo.
#[derive(Debug, Clone, Default)]
pub struct EncodeMemo<T> {
    last: Option<T>,
    buf: Vec<u8>,
}

impl<T: Clone + PartialEq> EncodeMemo<T> {
    /// An empty memo; the first [`bytes_for`](Self::bytes_for) call
    /// always encodes.
    pub fn new() -> Self {
        EncodeMemo {
            last: None,
            buf: Vec::new(),
        }
    }

    /// The encoded bytes of `value`, re-encoding via `encode` only if
    /// `value` differs from the previously memoized one. The returned
    /// slice is valid until the next call.
    pub fn bytes_for(&mut self, value: &T, encode: impl FnOnce(&T, &mut Vec<u8>)) -> &[u8] {
        if self.last.as_ref() != Some(value) {
            self.buf.clear();
            encode(value, &mut self.buf);
            self.last = Some(value.clone());
        }
        &self.buf
    }

    /// Drop the memoized value so the next call re-encodes
    /// unconditionally (e.g. after the encoder's behavior changed).
    pub fn invalidate(&mut self) {
        self.last = None;
    }

    /// Whether a value is currently memoized.
    pub fn is_primed(&self) -> bool {
        self.last.is_some()
    }
}

#[cfg(test)]
mod memo_tests {
    use super::*;
    use crate::{Average, Tagged};
    use std::cell::Cell;

    #[test]
    fn encodes_once_per_distinct_value() {
        let calls = Cell::new(0u32);
        let enc = |t: &Tagged<Average>, buf: &mut Vec<u8>| {
            calls.set(calls.get() + 1);
            encode_tagged(t, buf);
        };
        let mut memo = EncodeMemo::new();
        assert!(!memo.is_primed());

        let a = Tagged::<Average>::from_vote(1, 2.0, 64);
        let first = memo.bytes_for(&a, enc).to_vec();
        assert_eq!(calls.get(), 1);
        assert!(memo.is_primed());

        // same value again: no re-encode, same bytes
        let again = memo.bytes_for(&a, enc).to_vec();
        assert_eq!(calls.get(), 1);
        assert_eq!(first, again);

        // a different value re-encodes
        let mut b = a.clone();
        b.try_merge(&Tagged::from_vote(9, 4.0, 64)).unwrap();
        let changed = memo.bytes_for(&b, enc).to_vec();
        assert_eq!(calls.get(), 2);
        assert_ne!(first, changed);

        // and the memo tracks the *latest* value, not the first
        memo.bytes_for(&b, enc);
        assert_eq!(calls.get(), 2);
        memo.bytes_for(&a, enc);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn memoized_bytes_match_fresh_encoding() {
        let mut t = Tagged::<Average>::from_vote(3, 10.0, 128);
        t.try_merge(&Tagged::from_vote(77, 30.0, 128)).unwrap();
        let mut memo = EncodeMemo::new();
        let cached = memo.bytes_for(&t, encode_tagged).to_vec();
        let mut fresh = Vec::new();
        encode_tagged(&t, &mut fresh);
        assert_eq!(cached, fresh);
        // cached bytes decode back to the original value
        let back: Tagged<Average> = decode_tagged(&mut &cached[..]).unwrap();
        assert_eq!(back.vote_count(), t.vote_count());
        assert_eq!(back.aggregate(), t.aggregate());
    }

    #[test]
    fn invalidate_forces_reencode() {
        let calls = Cell::new(0u32);
        let enc = |t: &Tagged<Average>, buf: &mut Vec<u8>| {
            calls.set(calls.get() + 1);
            encode_tagged(t, buf);
        };
        let mut memo = EncodeMemo::new();
        let t = Tagged::<Average>::from_vote(0, 1.0, 64);
        memo.bytes_for(&t, enc);
        memo.invalidate();
        assert!(!memo.is_primed());
        memo.bytes_for(&t, enc);
        assert_eq!(calls.get(), 2);
    }
}

#[cfg(test)]
mod tagged_wire_tests {
    use super::*;
    use crate::{Average, Tagged};
    use bytes::BytesMut;

    #[test]
    fn tagged_roundtrip() {
        let mut t = Tagged::<Average>::from_vote(3, 10.0, 256);
        t.try_merge(&Tagged::from_vote(200, 30.0, 256)).unwrap();
        let mut buf = BytesMut::new();
        encode_tagged(&t, &mut buf);
        let back: Tagged<Average> = decode_tagged(&mut buf.freeze()).unwrap();
        assert_eq!(back.vote_count(), 2);
        assert!(back.votes().contains(3) && back.votes().contains(200));
        assert_eq!(back.aggregate().unwrap().summary(), 20.0);
    }

    #[test]
    fn empty_tagged_roundtrip() {
        let t = Tagged::<Average>::empty(64);
        let mut buf = BytesMut::new();
        encode_tagged(&t, &mut buf);
        let back: Tagged<Average> = decode_tagged(&mut buf.freeze()).unwrap();
        assert!(back.aggregate().is_none());
        assert_eq!(back.vote_count(), 0);
    }

    #[test]
    fn mismatched_value_and_set_rejected() {
        // a tagged with a value but fabricated empty voteset decodes
        // fine; a voteset without a value is rejected by from_parts
        let mut buf = BytesMut::new();
        buf.put_u8(0); // no value
        buf.put_u16(1);
        buf.put_u64(0b1); // ...but one contributor
        let r: Result<Tagged<Average>, _> = decode_tagged(&mut buf.freeze());
        assert_eq!(r.unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn truncated_tagged_rejected() {
        let t = Tagged::<Average>::from_vote(0, 1.0, 64);
        let mut buf = BytesMut::new();
        encode_tagged(&t, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut short = full.slice(0..cut);
            let r: Result<Tagged<Average>, _> = decode_tagged(&mut short);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }
}
