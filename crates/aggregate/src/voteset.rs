//! Contributor bitsets — the no-double-counting instrument.
//!
//! The paper imposes: "no member vote is counted twice in any global
//! aggregate calculation". [`VoteSet`] tracks exactly which members'
//! votes an aggregate contains, so the simulator can (a) *enforce* the
//! constraint (merging overlapping aggregates is an error) and (b)
//! *measure* completeness ("the percentage of member votes included in a
//! final global aggregate evaluation").
//!
//! This is simulation instrumentation: the protocol's correctness never
//! depends on shipping the set, and the wire codec ([`crate::wire`])
//! serializes only the constant-size aggregate value.

/// A set of member indices, backed by a compact bit vector.
///
/// ```
/// use gridagg_aggregate::VoteSet;
///
/// let mut included = VoteSet::new(100);
/// included.insert(3);
/// included.insert(64);
/// assert!(included.contains(3));
/// assert_eq!(included.len(), 2);
/// assert_eq!(included.coverage(100), 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VoteSet {
    words: Vec<u64>,
    len: usize,
}

impl VoteSet {
    /// An empty set sized for a group of `n` members.
    pub fn new(n: usize) -> Self {
        VoteSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// A set containing exactly `member`, sized for a group of `n`
    /// (grows automatically if `member >= n`).
    pub fn singleton(member: usize, n: usize) -> Self {
        let mut s = VoteSet::new(n);
        s.insert(member);
        s
    }

    /// Insert a member index; returns `true` if newly inserted.
    ///
    /// Grows the backing store if `member` exceeds the current capacity.
    pub fn insert(&mut self, member: usize) -> bool {
        let word = member / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (member % 64);
        if self.words[word] & bit != 0 {
            false
        } else {
            self.words[word] |= bit;
            self.len += 1;
            true
        }
    }

    /// Whether the set contains `member`.
    pub fn contains(&self, member: usize) -> bool {
        self.words
            .get(member / 64)
            .is_some_and(|w| w & (1u64 << (member % 64)) != 0)
    }

    /// Number of members in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this set shares no member with `other`.
    pub fn is_disjoint(&self, other: &VoteSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// In-place union. The caller is responsible for checking
    /// disjointness first when the no-double-counting constraint applies
    /// (see [`crate::Tagged::try_merge`]).
    pub fn union_with(&mut self, other: &VoteSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Iterate over member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// The raw 64-bit words backing the set (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a set from raw words (inverse of [`VoteSet::words`]).
    pub fn from_words(words: Vec<u64>) -> Self {
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        VoteSet { words, len }
    }

    /// Fraction of a group of `n` members covered by this set.
    pub fn coverage(&self, n: usize) -> f64 {
        if n == 0 {
            1.0
        } else {
            crate::conv::count_to_f64(self.len as u64) / crate::conv::count_to_f64(n as u64)
        }
    }
}

impl FromIterator<usize> for VoteSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = VoteSet::new(0);
        for m in iter {
            s.insert(m);
        }
        s
    }
}

impl Extend<usize> for VoteSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for m in iter {
            self.insert(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = VoteSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert!(s.contains(5));
        assert!(s.contains(64));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut s = VoteSet::new(10);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn singleton() {
        let s = VoteSet::singleton(7, 64);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
    }

    #[test]
    fn disjointness() {
        let a: VoteSet = [1, 2, 3].into_iter().collect();
        let b: VoteSet = [4, 5].into_iter().collect();
        let c: VoteSet = [3, 4].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        assert!(!a.is_disjoint(&c));
        assert!(!c.is_disjoint(&b));
    }

    #[test]
    fn disjointness_with_different_lengths() {
        let a: VoteSet = [1].into_iter().collect();
        let b: VoteSet = [1000].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
    }

    #[test]
    fn union_recounts() {
        let mut a: VoteSet = [1, 2].into_iter().collect();
        let b: VoteSet = [2, 200].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(200));
    }

    #[test]
    fn iter_ascending() {
        let s: VoteSet = [100, 1, 64, 2].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 64, 100]);
    }

    #[test]
    fn coverage() {
        let s: VoteSet = (0..25).collect();
        assert!((s.coverage(100) - 0.25).abs() < 1e-12);
        assert_eq!(VoteSet::new(0).coverage(0), 1.0);
    }

    #[test]
    fn empty_set() {
        let s = VoteSet::new(64);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn words_roundtrip() {
        let s: VoteSet = [1, 64, 300].into_iter().collect();
        let back = VoteSet::from_words(s.words().to_vec());
        assert_eq!(back, s);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn singleton_grows_past_capacity() {
        let s = VoteSet::singleton(64, 64);
        assert!(s.contains(64));
        assert_eq!(s.len(), 1);
    }
}
