//! Contributor bitsets — the no-double-counting instrument.
//!
//! The paper imposes: "no member vote is counted twice in any global
//! aggregate calculation". [`VoteSet`] tracks exactly which members'
//! votes an aggregate contains, so the simulator can (a) *enforce* the
//! constraint (merging overlapping aggregates is an error) and (b)
//! *measure* completeness ("the percentage of member votes included in a
//! final global aggregate evaluation").
//!
//! This is simulation instrumentation: the protocol's correctness never
//! depends on shipping the set, and the wire codec ([`crate::wire`])
//! serializes only the constant-size aggregate value.
//!
//! # Exact vs counted representation
//!
//! An exact bitset costs `N/8` bytes, and a protocol where every member
//! carries aggregates over member subsets therefore costs `O(N²/8)`
//! bytes of pure instrumentation — at `N = 2^20` that alone rules the
//! scale out. [`VoteSet::for_scale`] switches to a **counted**
//! representation above [`EXACT_TRACK_MAX`]: only the contributor
//! *count* is kept, which is exact as long as every merge is
//! structurally disjoint (deduplicated before merging, as hierarchical
//! gossip, flat gossip, and leader election all do). Protocols that
//! *rely* on [`crate::Tagged::try_merge`] rejecting overlaps to
//! deduplicate (flood, centralized) must keep exact sets and cap their
//! group size accordingly.

/// Largest group size for which [`VoteSet::for_scale`] keeps an exact
/// per-member bitset. Above this, sets are counted, not enumerated.
///
/// The threshold sits exactly at the top of the frozen bench/golden grid
/// (`N = 16384`), so every recorded small-`N` result keeps byte-identical
/// behavior while the scale ladder above it becomes memory-feasible.
pub const EXACT_TRACK_MAX: usize = 16384;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// Exact membership bitmap.
    Exact { words: Vec<u64>, len: usize },
    /// Contributor count only; exact under structurally disjoint merges.
    Counted { count: usize },
}

/// A set of member indices, backed by a compact bit vector — or, above
/// [`EXACT_TRACK_MAX`], by a bare contributor count (see the module
/// docs).
///
/// ```
/// use gridagg_aggregate::VoteSet;
///
/// let mut included = VoteSet::new(100);
/// included.insert(3);
/// included.insert(64);
/// assert!(included.contains(3));
/// assert_eq!(included.len(), 2);
/// assert_eq!(included.coverage(100), 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteSet {
    repr: Repr,
}

impl Default for VoteSet {
    fn default() -> Self {
        VoteSet::new(0)
    }
}

impl VoteSet {
    /// An empty **exact** set sized for a group of `n` members.
    pub fn new(n: usize) -> Self {
        VoteSet {
            repr: Repr::Exact {
                words: vec![0; n.div_ceil(64)],
                len: 0,
            },
        }
    }

    /// An empty set sized for a group of `n`: exact up to
    /// [`EXACT_TRACK_MAX`], counted above it.
    ///
    /// Only protocols whose merges are structurally disjoint (they
    /// deduplicate contributors *before* merging) may use this; see the
    /// module docs.
    pub fn for_scale(n: usize) -> Self {
        if n <= EXACT_TRACK_MAX {
            VoteSet::new(n)
        } else {
            VoteSet {
                repr: Repr::Counted { count: 0 },
            }
        }
    }

    /// A set containing exactly `member`, sized for a group of `n`
    /// (grows automatically if `member >= n`). Always exact.
    pub fn singleton(member: usize, n: usize) -> Self {
        let mut s = VoteSet::new(n);
        s.insert(member);
        s
    }

    /// A set containing exactly `member`, in the representation
    /// [`VoteSet::for_scale`] picks for `n`.
    pub fn singleton_for_scale(member: usize, n: usize) -> Self {
        if n <= EXACT_TRACK_MAX {
            VoteSet::singleton(member, n)
        } else {
            VoteSet {
                repr: Repr::Counted { count: 1 },
            }
        }
    }

    /// A counted set holding `count` (structurally deduplicated)
    /// contributors. Used by the tagged wire codec; protocol code
    /// reaches counted mode via [`VoteSet::for_scale`] instead.
    pub fn counted(count: usize) -> Self {
        VoteSet {
            repr: Repr::Counted { count },
        }
    }

    /// Whether this set tracks exact per-member identity (as opposed to
    /// a bare contributor count).
    pub fn is_exact(&self) -> bool {
        matches!(self.repr, Repr::Exact { .. })
    }

    /// Insert a member index; returns `true` if newly inserted.
    ///
    /// Grows the backing store if `member` exceeds the current capacity.
    /// A counted set cannot deduplicate: it increments its count and
    /// returns `true` unconditionally, trusting the caller's structural
    /// dedup (see the module docs).
    pub fn insert(&mut self, member: usize) -> bool {
        match &mut self.repr {
            Repr::Exact { words, len } => {
                let word = member / 64;
                if word >= words.len() {
                    words.resize(word + 1, 0);
                }
                let bit = 1u64 << (member % 64);
                if words[word] & bit != 0 {
                    false
                } else {
                    words[word] |= bit;
                    *len += 1;
                    true
                }
            }
            Repr::Counted { count } => {
                *count += 1;
                true
            }
        }
    }

    /// Whether the set contains `member`. Counted sets carry no
    /// identity and always answer `false`; gate on
    /// [`VoteSet::is_exact`] where membership matters.
    pub fn contains(&self, member: usize) -> bool {
        match &self.repr {
            Repr::Exact { words, .. } => words
                .get(member / 64)
                .is_some_and(|w| w & (1u64 << (member % 64)) != 0),
            Repr::Counted { .. } => false,
        }
    }

    /// Number of members in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Exact { len, .. } => *len,
            Repr::Counted { count } => *count,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this set shares no member with `other`.
    ///
    /// When either side is counted, identity is unavailable and the
    /// disjointness obligation rests on the caller's structural dedup,
    /// so counted pairs report disjoint (see the module docs).
    pub fn is_disjoint(&self, other: &VoteSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Exact { words: a, .. }, Repr::Exact { words: b, .. }) => {
                a.iter().zip(b.iter()).all(|(a, b)| a & b == 0)
            }
            _ => true,
        }
    }

    /// In-place union. The caller is responsible for checking
    /// disjointness first when the no-double-counting constraint applies
    /// (see [`crate::Tagged::try_merge`]). A union involving a counted
    /// side degrades to a counted sum.
    pub fn union_with(&mut self, other: &VoteSet) {
        match (&mut self.repr, &other.repr) {
            (Repr::Exact { words, len }, Repr::Exact { words: b, .. }) => {
                if b.len() > words.len() {
                    words.resize(b.len(), 0);
                }
                for (a, b) in words.iter_mut().zip(b.iter()) {
                    *a |= b;
                }
                *len = words.iter().map(|w| w.count_ones() as usize).sum();
            }
            _ => {
                self.repr = Repr::Counted {
                    count: self.len() + other.len(),
                };
            }
        }
    }

    /// Iterate over member indices in ascending order. Counted sets
    /// carry no identity and iterate nothing; gate on
    /// [`VoteSet::is_exact`] where enumeration matters.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words: &[u64] = match &self.repr {
            Repr::Exact { words, .. } => words,
            Repr::Counted { .. } => &[],
        };
        words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// The raw 64-bit words backing the set (for serialization). Empty
    /// for counted sets — the tagged codec writes their count instead.
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Exact { words, .. } => words,
            Repr::Counted { .. } => &[],
        }
    }

    /// Rebuild an exact set from raw words (inverse of
    /// [`VoteSet::words`]).
    pub fn from_words(words: Vec<u64>) -> Self {
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        VoteSet {
            repr: Repr::Exact { words, len },
        }
    }

    /// Fraction of a group of `n` members covered by this set.
    pub fn coverage(&self, n: usize) -> f64 {
        if n == 0 {
            1.0
        } else {
            crate::conv::count_to_f64(self.len() as u64) / crate::conv::count_to_f64(n as u64)
        }
    }
}

impl FromIterator<usize> for VoteSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = VoteSet::new(0);
        for m in iter {
            s.insert(m);
        }
        s
    }
}

impl Extend<usize> for VoteSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for m in iter {
            self.insert(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = VoteSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert!(s.contains(5));
        assert!(s.contains(64));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut s = VoteSet::new(10);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn singleton() {
        let s = VoteSet::singleton(7, 64);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
    }

    #[test]
    fn disjointness() {
        let a: VoteSet = [1, 2, 3].into_iter().collect();
        let b: VoteSet = [4, 5].into_iter().collect();
        let c: VoteSet = [3, 4].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        assert!(!a.is_disjoint(&c));
        assert!(!c.is_disjoint(&b));
    }

    #[test]
    fn disjointness_with_different_lengths() {
        let a: VoteSet = [1].into_iter().collect();
        let b: VoteSet = [1000].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
    }

    #[test]
    fn union_recounts() {
        let mut a: VoteSet = [1, 2].into_iter().collect();
        let b: VoteSet = [2, 200].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(200));
    }

    #[test]
    fn iter_ascending() {
        let s: VoteSet = [100, 1, 64, 2].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 64, 100]);
    }

    #[test]
    fn coverage() {
        let s: VoteSet = (0..25).collect();
        assert!((s.coverage(100) - 0.25).abs() < 1e-12);
        assert_eq!(VoteSet::new(0).coverage(0), 1.0);
    }

    #[test]
    fn empty_set() {
        let s = VoteSet::new(64);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn words_roundtrip() {
        let s: VoteSet = [1, 64, 300].into_iter().collect();
        let back = VoteSet::from_words(s.words().to_vec());
        assert_eq!(back, s);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn singleton_grows_past_capacity() {
        let s = VoteSet::singleton(64, 64);
        assert!(s.contains(64));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn for_scale_picks_representation_by_group_size() {
        assert!(VoteSet::for_scale(EXACT_TRACK_MAX).is_exact());
        assert!(!VoteSet::for_scale(EXACT_TRACK_MAX + 1).is_exact());
        assert!(VoteSet::singleton_for_scale(3, 64).is_exact());
        assert!(!VoteSet::singleton_for_scale(3, 1 << 20).is_exact());
    }

    #[test]
    fn small_scale_is_byte_compatible_with_exact() {
        // below the threshold the scale constructors are the plain ones
        assert_eq!(VoteSet::for_scale(1024), VoteSet::new(1024));
        assert_eq!(
            VoteSet::singleton_for_scale(9, 1024),
            VoteSet::singleton(9, 1024)
        );
    }

    #[test]
    fn counted_tracks_counts_exactly() {
        let mut s = VoteSet::for_scale(1 << 20);
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(s.insert(700_000));
        assert_eq!(s.len(), 2);
        let other = VoteSet::counted(3);
        assert!(s.is_disjoint(&other));
        s.union_with(&other);
        assert_eq!(s.len(), 5);
        assert!((s.coverage(10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counted_has_no_identity() {
        let s = VoteSet::counted(4);
        assert!(!s.is_exact());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
        assert!(s.words().is_empty());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn mixed_union_degrades_to_counted() {
        let mut a: VoteSet = [1, 2].into_iter().collect();
        a.union_with(&VoteSet::counted(2));
        assert!(!a.is_exact());
        assert_eq!(a.len(), 4);
        let mut c = VoteSet::counted(1);
        c.union_with(&VoteSet::singleton(9, 16));
        assert!(!c.is_exact());
        assert_eq!(c.len(), 2);
    }
}
