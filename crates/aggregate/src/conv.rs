//! Centralized, audited float↔int conversions for aggregate math.
//!
//! Rule D004 of the in-repo linter (`gridagg-lint`) bans ad-hoc `as`
//! float↔int casts in this crate: a stray `as u64` silently truncates
//! and saturates, a stray `as f64` silently rounds above 2^53 — exactly
//! the class of quiet numeric bug a mass-conserving aggregation protocol
//! cannot absorb. Every conversion the aggregate functions need goes
//! through this module instead, where the precondition is stated once,
//! checked under `strict-invariants`, and waivered once.

/// A vote/bucket count as an `f64`.
///
/// Exact for counts up to 2^53 — astronomically above any group size
/// this simulator runs; checked under `strict-invariants`.
#[inline]
pub(crate) fn count_to_f64(c: u64) -> f64 {
    crate::strict_assert!(
        c <= (1u64 << 53),
        "strict-invariants: count {c} exceeds f64's exact-integer range"
    );
    // lint:allow(D004) the audited widening this module exists for; exact below 2^53
    c as f64
}

/// A finite, non-negative `f64` truncated to a count.
#[inline]
pub(crate) fn f64_to_count(x: f64) -> u64 {
    crate::strict_assert!(
        x.is_finite() && x >= 0.0,
        "strict-invariants: {x} is not a valid count"
    );
    // lint:allow(D004) the audited truncation this module exists for; callers pass finite non-negatives
    x.trunc() as u64
}

/// A float bucket position truncated and clamped to `0..buckets`.
///
/// Mirrors `as` cast semantics for the edge cases: `NaN` maps to bucket
/// 0, out-of-range positions saturate into the first/last bucket.
#[inline]
pub(crate) fn f64_to_bucket(pos: f64, buckets: usize) -> usize {
    // lint:allow(D004) audited float-to-index truncation; the result is clamped to the bucket range
    let idx = pos.floor() as i64;
    idx.clamp(0, buckets as i64 - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_roundtrips_exactly_at_protocol_scale() {
        for c in [0u64, 1, 4096, 1 << 40] {
            assert_eq!(f64_to_count(count_to_f64(c)), c);
        }
    }

    #[test]
    fn truncation_matches_as_cast() {
        for x in [0.0, 0.9, 1.0, 2.5, 1e6] {
            assert_eq!(f64_to_count(x), x as u64);
        }
    }

    #[test]
    fn bucket_clamps_and_absorbs_nan() {
        assert_eq!(f64_to_bucket(-3.0, 16), 0);
        assert_eq!(f64_to_bucket(7.9, 16), 7);
        assert_eq!(f64_to_bucket(1e18, 16), 15);
        assert_eq!(f64_to_bucket(f64::NAN, 16), 0);
    }
}
