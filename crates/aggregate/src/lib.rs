//! # gridagg-aggregate
//!
//! *Composable* global aggregate functions, as defined in the paper's
//! introduction: `f` is composable iff for disjoint vote sets `W1`, `W2`
//! there is a known `g` with `f(W1 ∪ W2) = g(f(W1), f(W2))`, and the
//! byte-size of `f`'s output is not much larger than an individual vote.
//!
//! * [`Aggregate`] — the trait capturing `f`/`g`: build from one vote,
//!   [`Aggregate::merge`] two partial results. Implementations:
//!   [`Average`], [`Sum`], [`Count`], [`Min`], [`Max`], [`MeanVar`]
//!   (mean *and* variance via Chan's parallel algorithm),
//!   [`Histogram16`], and [`TopK`].
//! * [`VoteSet`] — a bitset of contributing members. This is *simulation
//!   instrumentation*: it measures completeness exactly and enforces the
//!   paper's **no double counting** constraint. A real deployment ships
//!   only the constant-size aggregate value — see [`wire`], which proves
//!   the constant-size property.
//! * [`Tagged`] — an aggregate value paired with its [`VoteSet`];
//!   [`Tagged::try_merge`] fails rather than count a vote twice.
//!
//! # Example
//!
//! ```
//! use gridagg_aggregate::{Aggregate, Average, Tagged};
//!
//! // f(v1..v4) = average, computed hierarchically: g(f(W1), f(W2))
//! let mut left = Tagged::<Average>::from_vote(0, 10.0, 4);
//! left.try_merge(&Tagged::from_vote(1, 20.0, 4))?;
//! let mut right = Tagged::<Average>::from_vote(2, 30.0, 4);
//! right.try_merge(&Tagged::from_vote(3, 40.0, 4))?;
//! left.try_merge(&right)?;
//! assert_eq!(left.aggregate().unwrap().summary(), 25.0);
//! assert_eq!(left.completeness(4), 1.0);
//! # Ok::<(), gridagg_aggregate::DoubleCount>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub(crate) mod conv;
pub mod funcs;
pub mod tagged;
pub mod voteset;
pub mod wire;

pub use funcs::{All, Any, Average, Count, Histogram16, Max, MeanVar, Min, Sum, TopK};
pub use tagged::{DoubleCount, Tagged};
pub use voteset::{VoteSet, EXACT_TRACK_MAX};

/// Assert an internal protocol invariant when the `strict-invariants`
/// feature is enabled; compiles to nothing otherwise.
///
/// The feature is evaluated in the *calling* crate, so downstream crates
/// (e.g. `gridagg-core`) declare their own `strict-invariants` feature
/// that forwards to this crate's. See DESIGN.md §11.
#[macro_export]
macro_rules! strict_assert {
    ($($arg:tt)*) => {
        #[cfg(feature = "strict-invariants")]
        {
            assert!($($arg)*);
        }
    };
}

/// A composable aggregate function (the paper's `f` with composition `g`).
///
/// Laws (checked by property tests):
/// * **Commutativity**: `a.merge(b)` ≡ `b.merge(a)`.
/// * **Associativity**: merging in any grouping yields the same result.
///
/// Together these make the hierarchical bottom-up evaluation (Figure 2)
/// well-defined regardless of gossip arrival order.
pub trait Aggregate: Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// The partial result for a single member vote.
    fn from_vote(vote: f64) -> Self;

    /// Compose with another partial result over a *disjoint* vote set
    /// (the paper's `g`).
    fn merge(&mut self, other: &Self);

    /// The headline scalar of this aggregate (the mean for [`Average`],
    /// the minimum for [`Min`], …) — what an application would act on,
    /// e.g. "trigger a coolant release if this is above a threshold".
    fn summary(&self) -> f64;
}
