//! The standard composable aggregate functions.
//!
//! "Average, minimum and maximum are all examples of composable
//! functions" (§1). We additionally provide sum, count, a numerically
//! stable mean+variance (Chan's parallel update), a fixed-width histogram
//! (for approximate quantiles), and a bounded top-K — all with
//! constant-size state, as the composability definition requires.

use crate::conv;
use crate::Aggregate;

/// Arithmetic mean: state is `(sum, count)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Average {
    sum: f64,
    count: u64,
}

impl Average {
    /// Reassemble from raw parts (used by the wire codec).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` — an average over nothing is represented
    /// as *absence* of an aggregate, not a zero-count value.
    pub fn from_parts(sum: f64, count: u64) -> Self {
        assert!(count > 0, "Average::from_parts with count 0");
        Average { sum, count }
    }

    /// Total of votes seen.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of votes composed in.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Aggregate for Average {
    fn from_vote(vote: f64) -> Self {
        Average {
            sum: vote,
            count: 1,
        }
    }

    fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.count += other.count;
    }

    fn summary(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / conv::count_to_f64(self.count)
        }
    }
}

/// Sum of votes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sum(f64);

impl Aggregate for Sum {
    fn from_vote(vote: f64) -> Self {
        Sum(vote)
    }

    fn merge(&mut self, other: &Self) {
        self.0 += other.0;
    }

    fn summary(&self) -> f64 {
        self.0
    }
}

/// Number of votes (e.g. live-member counting, a classic gossip
/// aggregation task).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Count(u64);

impl Count {
    /// Reassemble from a raw count (used by the wire codec).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_parts(n: u64) -> Self {
        assert!(n > 0, "Count::from_parts with 0");
        Count(n)
    }

    /// The raw count, without the float round-trip of
    /// [`Aggregate::summary`].
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Aggregate for Count {
    fn from_vote(_vote: f64) -> Self {
        Count(1)
    }

    fn merge(&mut self, other: &Self) {
        self.0 += other.0;
    }

    fn summary(&self) -> f64 {
        conv::count_to_f64(self.0)
    }
}

/// Minimum vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Min(f64);

impl Aggregate for Min {
    fn from_vote(vote: f64) -> Self {
        Min(vote)
    }

    fn merge(&mut self, other: &Self) {
        if other.0 < self.0 {
            self.0 = other.0;
        }
    }

    fn summary(&self) -> f64 {
        self.0
    }
}

/// Maximum vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Max(f64);

impl Aggregate for Max {
    fn from_vote(vote: f64) -> Self {
        Max(vote)
    }

    fn merge(&mut self, other: &Self) {
        if other.0 > self.0 {
            self.0 = other.0;
        }
    }

    fn summary(&self) -> f64 {
        self.0
    }
}

/// Mean and variance in one constant-size state, composed with Chan et
/// al.'s parallel update — useful for "is the sensor field anomalous"
/// queries without a second protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanVar {
    count: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Reassemble from raw parts `(count, mean, m2)` (wire codec).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `m2 < 0`.
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        assert!(count > 0, "MeanVar::from_parts with count 0");
        assert!(m2 >= 0.0, "negative sum of squared deviations");
        MeanVar { count, mean, m2 }
    }

    /// The mean of the composed votes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance of the composed votes.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / conv::count_to_f64(self.count)
        }
    }

    /// Number of votes composed in.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Aggregate for MeanVar {
    fn from_vote(vote: f64) -> Self {
        MeanVar {
            count: 1,
            mean: vote,
            m2: 0.0,
        }
    }

    fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (
            conv::count_to_f64(self.count),
            conv::count_to_f64(other.count),
        );
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
    }

    fn summary(&self) -> f64 {
        self.mean
    }
}

/// Number of buckets in [`Histogram16`].
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-range, 16-bucket histogram: constant-size state supporting
/// approximate quantile queries over the group's votes.
///
/// Votes below the range clamp into the first bucket, above into the
/// last. The range is part of the "well-known" protocol configuration
/// (like `K` and `H`), so all members agree on bucket boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram16 {
    lo: f64,
    hi: f64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

/// The well-known histogram range, fixed for a protocol run.
/// Default `[0, 100]` suits the temperature examples.
pub static HISTOGRAM_RANGE: (f64, f64) = (0.0, 100.0);

impl Histogram16 {
    /// Reassemble from raw bucket counts (wire codec). Uses the
    /// well-known [`HISTOGRAM_RANGE`].
    ///
    /// # Panics
    ///
    /// Panics if all buckets are zero.
    pub fn from_parts(buckets: [u64; HISTOGRAM_BUCKETS]) -> Self {
        assert!(
            buckets.iter().any(|&c| c > 0),
            "Histogram16::from_parts with no votes"
        );
        let (lo, hi) = HISTOGRAM_RANGE;
        Histogram16 { lo, hi, buckets }
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) assuming uniform spread
    /// within buckets.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let rank = (q.clamp(0.0, 1.0) * conv::count_to_f64(total))
            .ceil()
            .max(1.0);
        let target = conv::f64_to_count(rank);
        let width = (self.hi - self.lo) / conv::count_to_f64(HISTOGRAM_BUCKETS as u64);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target {
                let into = if c == 0 {
                    0.5
                } else {
                    conv::count_to_f64(target - seen) / conv::count_to_f64(c)
                };
                return self.lo + (conv::count_to_f64(i as u64) + into) * width;
            }
            seen += c;
        }
        self.hi
    }
}

impl Aggregate for Histogram16 {
    fn from_vote(vote: f64) -> Self {
        let (lo, hi) = HISTOGRAM_RANGE;
        let width = (hi - lo) / conv::count_to_f64(HISTOGRAM_BUCKETS as u64);
        let idx = conv::f64_to_bucket((vote - lo) / width, HISTOGRAM_BUCKETS);
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[idx] = 1;
        Histogram16 { lo, hi, buckets }
    }

    fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    fn summary(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Bound on the number of items a [`TopK`] retains.
pub const TOP_K: usize = 4;

/// The `TOP_K` largest votes seen — constant-size state, so still
/// composable in the paper's sense. Useful for "which sensors are
/// hottest" follow-up queries.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    items: Vec<f64>, // sorted descending, len <= TOP_K
}

impl TopK {
    /// Reassemble from raw items (wire codec); sorts and truncates.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn from_parts(mut items: Vec<f64>) -> Self {
        assert!(!items.is_empty(), "TopK::from_parts with no items");
        items.sort_by(|a, b| b.total_cmp(a));
        items.truncate(TOP_K);
        TopK { items }
    }

    /// The retained items, largest first.
    pub fn items(&self) -> &[f64] {
        &self.items
    }
}

impl Aggregate for TopK {
    fn from_vote(vote: f64) -> Self {
        TopK { items: vec![vote] }
    }

    fn merge(&mut self, other: &Self) {
        self.items.extend_from_slice(&other.items);
        self.items.sort_by(|a, b| b.total_cmp(a));
        self.items.truncate(TOP_K);
    }

    fn summary(&self) -> f64 {
        self.items.first().copied().unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<A: Aggregate>(votes: &[f64]) -> A {
        let mut it = votes.iter();
        let mut acc = A::from_vote(*it.next().expect("non-empty"));
        for &v in it {
            acc.merge(&A::from_vote(v));
        }
        acc
    }

    const VOTES: [f64; 6] = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0];

    #[test]
    fn average_matches_direct() {
        let a: Average = fold(&VOTES);
        assert!((a.summary() - 3.5).abs() < 1e-12);
        assert_eq!(a.count(), 6);
        assert!((a.sum() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn sum_count_min_max() {
        assert_eq!(fold::<Sum>(&VOTES).summary(), 21.0);
        assert_eq!(fold::<Count>(&VOTES).summary(), 6.0);
        assert_eq!(fold::<Min>(&VOTES).summary(), -1.0);
        assert_eq!(fold::<Max>(&VOTES).summary(), 9.0);
    }

    #[test]
    fn meanvar_matches_two_pass() {
        let mv: MeanVar = fold(&VOTES);
        let mean = VOTES.iter().sum::<f64>() / VOTES.len() as f64;
        let var = VOTES.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / VOTES.len() as f64;
        assert!((mv.mean() - mean).abs() < 1e-12);
        assert!((mv.variance() - var).abs() < 1e-9);
        assert_eq!(mv.count(), 6);
    }

    #[test]
    fn meanvar_merge_grouping_invariance() {
        // ((a b) (c d e f)) == fold in order
        let left: MeanVar = fold(&VOTES[..2]);
        let right: MeanVar = fold(&VOTES[2..]);
        let mut grouped = left;
        grouped.merge(&right);
        let folded: MeanVar = fold(&VOTES);
        assert!((grouped.mean() - folded.mean()).abs() < 1e-12);
        assert!((grouped.variance() - folded.variance()).abs() < 1e-9);
    }

    #[test]
    fn average_empty_summary_is_nan() {
        let a = Average { sum: 0.0, count: 0 };
        assert!(a.summary().is_nan());
    }

    #[test]
    fn histogram_counts_and_median() {
        let h: Histogram16 = fold(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(h.buckets().iter().sum::<u64>(), 5);
        let med = h.quantile(0.5);
        assert!((25.0..=37.5).contains(&med), "median {med}");
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let h: Histogram16 = fold(&[-50.0, 500.0]);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_quantile_extremes() {
        let h: Histogram16 = fold(&[50.0]);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn topk_keeps_largest() {
        let t: TopK = fold(&VOTES);
        assert_eq!(t.items(), &[9.0, 5.0, 4.0, 3.0]);
        assert_eq!(t.summary(), 9.0);
    }

    #[test]
    fn topk_is_order_insensitive() {
        let mut shuffled = VOTES;
        shuffled.reverse();
        assert_eq!(fold::<TopK>(&VOTES), fold::<TopK>(&shuffled));
    }

    #[test]
    fn merge_commutes_for_all() {
        fn comm<A: Aggregate>(x: f64, y: f64) {
            let mut ab = A::from_vote(x);
            ab.merge(&A::from_vote(y));
            let mut ba = A::from_vote(y);
            ba.merge(&A::from_vote(x));
            assert_eq!(ab, ba, "{}", std::any::type_name::<A>());
        }
        comm::<Sum>(1.5, -2.0);
        comm::<Count>(1.5, -2.0);
        comm::<Min>(1.5, -2.0);
        comm::<Max>(1.5, -2.0);
        comm::<Average>(1.5, -2.0);
        comm::<TopK>(1.5, -2.0);
        comm::<Histogram16>(15.0, 85.0);
    }
}

/// Logical OR over predicate votes: a vote is "true" iff non-zero.
/// Answers queries like "is *any* sensor above the threshold?" with
/// one byte of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Any(bool);

impl Any {
    /// Whether any composed vote was true.
    pub fn holds(&self) -> bool {
        self.0
    }
}

impl Aggregate for Any {
    fn from_vote(vote: f64) -> Self {
        Any(vote != 0.0)
    }

    fn merge(&mut self, other: &Self) {
        self.0 |= other.0;
    }

    fn summary(&self) -> f64 {
        if self.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Logical AND over predicate votes: a vote is "true" iff non-zero.
/// Answers "are *all* sensors healthy?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct All(bool);

impl All {
    /// Whether every composed vote was true.
    pub fn holds(&self) -> bool {
        self.0
    }
}

impl Aggregate for All {
    fn from_vote(vote: f64) -> Self {
        All(vote != 0.0)
    }

    fn merge(&mut self, other: &Self) {
        self.0 &= other.0;
    }

    fn summary(&self) -> f64 {
        if self.0 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod bool_tests {
    use super::*;

    #[test]
    fn any_is_or() {
        let mut a = Any::from_vote(0.0);
        assert!(!a.holds());
        a.merge(&Any::from_vote(0.0));
        assert!(!a.holds());
        a.merge(&Any::from_vote(3.5));
        assert!(a.holds());
        a.merge(&Any::from_vote(0.0));
        assert!(a.holds(), "OR is monotone");
        assert_eq!(a.summary(), 1.0);
    }

    #[test]
    fn all_is_and() {
        let mut a = All::from_vote(1.0);
        assert!(a.holds());
        a.merge(&All::from_vote(2.0));
        assert!(a.holds());
        a.merge(&All::from_vote(0.0));
        assert!(!a.holds());
        a.merge(&All::from_vote(1.0));
        assert!(!a.holds(), "AND is monotone");
        assert_eq!(a.summary(), 0.0);
    }

    #[test]
    fn bool_duality() {
        // Any(v) == !All(!v) over the same votes
        let votes = [0.0, 1.0, 0.0];
        let mut any = Any::from_vote(votes[0]);
        let mut all_negated = All::from_vote(if votes[0] == 0.0 { 1.0 } else { 0.0 });
        for &v in &votes[1..] {
            any.merge(&Any::from_vote(v));
            all_negated.merge(&All::from_vote(if v == 0.0 { 1.0 } else { 0.0 }));
        }
        assert_eq!(any.holds(), !all_negated.holds());
    }
}
