//! # gridagg
//!
//! A complete Rust implementation of **"Scalable Fault-Tolerant
//! Aggregation in Large Process Groups"** (Gupta, van Renesse, Birman —
//! DSN 2001): the **Grid Box Hierarchy** and the **Hierarchical
//! Gossiping** protocol, together with every substrate the paper's
//! evaluation depends on — a deterministic lossy network simulator,
//! group membership with crash injection, composable aggregate
//! functions with no-double-counting enforcement, the paper's baseline
//! protocols, and its epidemic-theoretic analysis.
//!
//! This crate is a facade: it re-exports the workspace crates so an
//! application can depend on `gridagg` alone.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `gridagg-core` | Hierarchical Gossiping, baselines, engine, experiments |
//! | [`hierarchy`] | `gridagg-hierarchy` | grid box addresses, fair & topological placement |
//! | [`aggregate`] | `gridagg-aggregate` | composable `f`/`g` functions, vote sets, wire codec |
//! | [`group`] | `gridagg-group` | members, votes, views, failure injection |
//! | [`simnet`] | `gridagg-simnet` | round-based lossy network simulator |
//! | [`analysis`] | `gridagg-analysis` | Bailey epidemics, `C_1`/`C_i` bounds, Theorem 1 |
//!
//! # Quickstart
//!
//! Compute the average of 200 sensor readings across a group with 25%
//! message loss and per-round crashes, exactly the paper's §7 default
//! setting:
//!
//! ```
//! use gridagg::prelude::*;
//!
//! let cfg = ExperimentConfig::paper_defaults();
//! let report = run_hiergossip::<Average>(&cfg, 42);
//! // Despite heavy loss, nearly every vote reaches every member:
//! assert!(report.mean_completeness().unwrap() > 0.9);
//! ```
//!
//! See `examples/` for the airplane-wing sensor scenario, a soft
//! network partition study, and an Internet-scale protocol comparison.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub use gridagg_aggregate as aggregate;
pub use gridagg_analysis as analysis;
pub use gridagg_core as core;
pub use gridagg_group as group;
pub use gridagg_hierarchy as hierarchy;
pub use gridagg_runtime as runtime;
pub use gridagg_simnet as simnet;

/// The most common imports in one place.
pub mod prelude {
    pub use gridagg_aggregate::{
        Aggregate, Average, Count, Histogram16, Max, MeanVar, Min, Sum, Tagged, TopK, VoteSet,
    };
    pub use gridagg_analysis::{c1, c1_incompleteness, ci_lower_bound, theorem1_bound};
    pub use gridagg_core::baselines::{
        Centralized, CentralizedConfig, FlatGossip, FlatGossipConfig, Flood, FloodConfig,
        FlowUpdating, FlowUpdatingConfig, LeaderDirectory, LeaderElection, LeaderElectionConfig,
    };
    pub use gridagg_core::config::{ExperimentConfig, VoteSpec};
    pub use gridagg_core::continuous::{
        run_continuous, ChurnEpochReport, ContinuousOptions, ContinuousOutcome, ContinuousProtocol,
    };
    pub use gridagg_core::periodic::{run_periodic, EpochReport, PeriodicOutcome, VoteProcess};
    pub use gridagg_core::runner::{
        run_centralized, run_flatgossip, run_flood, run_hiergossip, run_leader_election,
    };
    pub use gridagg_core::{
        run_many, summarize, AggregationProtocol, HierGossip, HierGossipConfig, MemberOutcome,
        RunReport, ScopeIndex, Series, Simulation, Summary,
    };
    pub use gridagg_group::{
        failure::FailureModel,
        membership::{ChurnModel, MembershipProcess},
        view::View,
        GroupBuilder, MemberId, VoteDistribution,
    };
    pub use gridagg_hierarchy::{
        Addr, ExplicitPlacement, FairHashPlacement, Hierarchy, Placement, PrefixPlacement,
        TopologicalPlacement,
    };
    pub use gridagg_simnet::{
        loss::{PartitionLoss, Perfect, UniformLoss},
        network::{NetworkConfig, SimNetwork},
        rng::DetRng,
        topology::{FieldKind, Position},
        NodeId, Round,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let h = Hierarchy::for_group(2, 8).unwrap();
        assert_eq!(h.phases(), 3);
        let cfg = ExperimentConfig::paper_defaults();
        assert_eq!(cfg.n, 200);
    }
}
