//! Golden-run equivalence: the optimized hot path must be
//! *byte-identical* in behavior to the pre-optimization tree.
//!
//! The numbers below were captured from the seed implementation (before
//! buffer pooling, `Arc`-shared payloads, and cached gossip bodies were
//! introduced) at three group sizes. Every optimization since must
//! preserve the exact RNG draw sequence and message flow, so any drift
//! in rounds, message counts, byte counts, or the *bit patterns* of the
//! derived metrics is a behavior change, not noise — this suite is the
//! proof the optimizations are pure.
//!
//! Floats are compared as `u64` bit patterns (`f64::to_bits`), so even
//! a last-ulp difference from a reordered fold fails loudly.

use gridagg::core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg::core::runner::run_hiergossip_traced;
use gridagg::core::RunReport;
use gridagg::prelude::*;

/// One frozen run outcome from the seed tree.
struct Golden {
    rounds: Round,
    sent: u64,
    delivered: u64,
    bytes_sent: u64,
    dropped_loss: u64,
    completed: usize,
    mean_completeness_bits: u64,
    mean_value_bits: u64,
}

fn check(label: &str, n: usize, seed: u64, report: &RunReport, golden: &Golden) {
    assert_eq!(
        report.rounds, golden.rounds,
        "{label} n={n} s={seed}: rounds"
    );
    assert_eq!(report.net.sent, golden.sent, "{label} n={n} s={seed}: sent");
    assert_eq!(
        report.net.delivered, golden.delivered,
        "{label} n={n} s={seed}: delivered"
    );
    assert_eq!(
        report.net.bytes_sent, golden.bytes_sent,
        "{label} n={n} s={seed}: bytes"
    );
    assert_eq!(
        report.net.dropped_loss, golden.dropped_loss,
        "{label} n={n} s={seed}: dropped"
    );
    assert_eq!(
        report.completed(),
        golden.completed,
        "{label} n={n} s={seed}: completed"
    );
    assert_eq!(
        report.mean_completeness().unwrap_or(-1.0).to_bits(),
        golden.mean_completeness_bits,
        "{label} n={n} s={seed}: mean completeness bits"
    );
    assert_eq!(
        report.mean_value_error().unwrap_or(-1.0).to_bits(),
        golden.mean_value_bits,
        "{label} n={n} s={seed}: mean value-error bits"
    );
}

fn cfg(n: usize) -> ExperimentConfig {
    // The goldens hold at any fork-join engine width: `engine_jobs` is
    // a pure execution knob (DESIGN.md §16), so CI reruns this whole
    // suite — frozen values untouched — with GRIDAGG_ENGINE_JOBS=4.
    let jobs = std::env::var("GRIDAGG_ENGINE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1);
    ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_engine_jobs(jobs)
}

#[test]
fn hiergossip_matches_seed_behavior() {
    for (n, seed, golden) in [
        (
            64,
            3,
            Golden {
                rounds: 15,
                sent: 2041,
                delivered: 1521,
                bytes_sent: 104201,
                dropped_loss: 520,
                completed: 64,
                mean_completeness_bits: 0x3ff0000000000000,
                mean_value_bits: 0x3cb4c076cde21a9c,
            },
        ),
        (
            256,
            7,
            Golden {
                rounds: 21,
                sent: 10964,
                delivered: 8253,
                bytes_sent: 577166,
                dropped_loss: 2711,
                completed: 251,
                mean_completeness_bits: 0x3fef97d734041466,
                mean_value_bits: 0x3f6a92c4baad445d,
            },
        ),
        (
            1024,
            11,
            Golden {
                rounds: 31,
                sent: 65280,
                delivered: 48822,
                bytes_sent: 3629370,
                dropped_loss: 16458,
                completed: 997,
                mean_completeness_bits: 0x3fef28cf786cdee0,
                mean_value_bits: 0x3f6128e0b35ff2b9,
            },
        ),
    ] {
        let report = run_hiergossip::<Average>(&cfg(n), seed);
        check("hier", n, seed, &report, &golden);
    }
}

#[test]
fn traced_hiergossip_matches_untraced_and_seed_trace_counts() {
    // Tracing must not perturb a run, and the trace itself is part of
    // the frozen behavior: the seed tree recorded exactly these event
    // counts.
    for (n, seed, events) in [(64usize, 3u64, 5207usize), (256, 7, 27706)] {
        let plain = run_hiergossip::<Average>(&cfg(n), seed);
        let (traced, trace) = run_hiergossip_traced::<Average>(&cfg(n), seed);
        assert_eq!(plain.rounds, traced.rounds, "n={n}: rounds");
        assert_eq!(plain.net, traced.net, "n={n}: network stats");
        assert_eq!(plain.outcomes, traced.outcomes, "n={n}: outcomes");
        assert_eq!(trace.len(), events, "n={n}: trace event count");
    }
}

#[test]
fn event_driven_engine_trace_is_byte_identical() {
    // The struct-of-arrays engine rewrite (event-driven round loop,
    // bitset vote sets, ring-buffered message queue) must not move a
    // single event: these are FNV-1a fingerprints over the debug
    // rendering of the *complete* trace stream, frozen from the dense
    // per-member scan. Any reordering, added, or dropped event — even
    // two swapped deliveries inside one round — changes the hash.
    for (n, seed, events, fingerprint) in [
        (256usize, 7u64, 27706usize, 0xf959_bd98_aaa1_ba54u64),
        (1024, 11, 159084, 0x887b_75fd_3307_1046),
    ] {
        let (_, trace) = run_hiergossip_traced::<Average>(&cfg(n), seed);
        assert_eq!(trace.len(), events, "n={n}: trace event count");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &trace.events {
            for byte in format!("{event:?}").bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        assert_eq!(hash, fingerprint, "n={n}: trace fingerprint {hash:#x}");
    }
}

#[test]
fn counted_vote_sets_track_exact_cardinality_under_dedup_merges() {
    use gridagg::aggregate::VoteSet;

    // Mirror the merge discipline of the gossip protocols: every member
    // contributes exactly once (the protocols dedup on first reception
    // before touching the set), and partial aggregates from disjoint
    // subgroups are unioned upward. Under that discipline the counted
    // representation — which the engine switches to above
    // `EXACT_TRACK_MAX` — must report the same cardinality as the exact
    // bitset at every step of the merge tree.
    let scale = 1 << 20; // forces the counted representation
    for group_size in [256usize, 1024] {
        let mut exact_root = VoteSet::new(group_size);
        let mut counted_root = VoteSet::for_scale(scale);
        for chunk_base in (0..group_size).step_by(64) {
            let mut exact_part = VoteSet::new(group_size);
            let mut counted_part = VoteSet::for_scale(scale);
            for member in chunk_base..(chunk_base + 64).min(group_size) {
                exact_part.union_with(&VoteSet::singleton(member, group_size));
                counted_part.union_with(&VoteSet::singleton_for_scale(member, scale));
                assert_eq!(exact_part.len(), counted_part.len());
            }
            assert!(exact_root.is_disjoint(&exact_part));
            assert!(counted_root.is_disjoint(&counted_part));
            exact_root.union_with(&exact_part);
            counted_root.union_with(&counted_part);
            assert_eq!(exact_root.len(), counted_root.len());
        }
        assert_eq!(exact_root.len(), group_size);
        assert_eq!(counted_root.len(), group_size);
        assert!(exact_root.is_exact());
        assert!(!counted_root.is_exact());
    }
}

#[test]
fn flatgossip_matches_seed_behavior() {
    for (n, seed, golden) in [
        (
            64,
            3,
            Golden {
                rounds: 20,
                sent: 2294,
                delivered: 1710,
                bytes_sent: 29822,
                dropped_loss: 584,
                completed: 62,
                mean_completeness_bits: 0x3fd5210842108421,
                mean_value_bits: 0x3fb4a30fd594062f,
            },
        ),
        (
            1024,
            11,
            Golden {
                rounds: 52,
                sent: 99924,
                delivered: 74888,
                bytes_sent: 1299012,
                dropped_loss: 25036,
                completed: 978,
                mean_completeness_bits: 0x3fb1a871146acc2c,
                mean_value_bits: 0x3fab131c23a5bd29,
            },
        ),
    ] {
        let report = run_flatgossip::<Average>(&cfg(n), seed);
        check("flat", n, seed, &report, &golden);
    }
}

#[test]
fn flood_matches_seed_behavior() {
    for (n, seed, golden) in [
        (
            64,
            3,
            Golden {
                rounds: 12,
                sent: 4032,
                delivered: 3024,
                bytes_sent: 52416,
                dropped_loss: 1008,
                completed: 64,
                mean_completeness_bits: 0x3fe8200000000000,
                mean_value_bits: 0x3fa07f1a5dc6dc4b,
            },
        ),
        (
            256,
            7,
            Golden {
                rounds: 36,
                sent: 63935,
                delivered: 47835,
                bytes_sent: 831155,
                dropped_loss: 16100,
                completed: 249,
                mean_completeness_bits: 0x3fe77cea68de1282,
                mean_value_bits: 0x3f90bcd02eb735ed,
            },
        ),
    ] {
        let report = run_flood::<Average>(&cfg(n), FloodConfig::default(), seed);
        check("flood", n, seed, &report, &golden);
    }
}

#[test]
fn centralized_matches_seed_behavior() {
    for (n, seed, golden) in [
        (
            64,
            3,
            Golden {
                rounds: 16,
                sent: 189,
                delivered: 148,
                bytes_sent: 2709,
                dropped_loss: 41,
                completed: 63,
                mean_completeness_bits: 0x3fe930c30c30c30c,
                mean_value_bits: 0x3fb737b0b33d4144,
            },
        ),
        (
            1024,
            11,
            Golden {
                rounds: 106,
                sent: 3007,
                delivered: 2234,
                bytes_sent: 43183,
                dropped_loss: 773,
                completed: 944,
                mean_completeness_bits: 0x3fe528e5f75270d0,
                mean_value_bits: 0x3fc110b072b89b78,
            },
        ),
    ] {
        let report = run_centralized::<Average>(&cfg(n), CentralizedConfig::for_group(n), seed);
        check("central", n, seed, &report, &golden);
    }
}

#[test]
fn leader_election_matches_seed_behavior() {
    for (n, seed, golden) in [
        (
            64,
            3,
            Golden {
                rounds: 14,
                sent: 252,
                delivered: 193,
                bytes_sent: 3998,
                dropped_loss: 59,
                completed: 64,
                mean_completeness_bits: 0x3febb00000000000,
                mean_value_bits: 0x3fa696a9bde22121,
            },
        ),
        (
            256,
            7,
            Golden {
                rounds: 18,
                sent: 1000,
                delivered: 762,
                bytes_sent: 16036,
                dropped_loss: 238,
                completed: 251,
                mean_completeness_bits: 0x3fe96f0b38187a64,
                mean_value_bits: 0x3f9f0b7220423b8d,
            },
        ),
    ] {
        let report = run_leader_election::<Average>(&cfg(n), LeaderElectionConfig::default(), seed);
        check("leader", n, seed, &report, &golden);
    }
}
