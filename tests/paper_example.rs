//! The paper's worked example, end to end.
//!
//! Figures 1–3: eight members `M1..M8`, `K = 2`, four grid boxes
//! `00 01 10 11`, subtrees `0*`, `1*`, `**`, and the bottom-up
//! evaluation `f(M7,M3,M8) / f(M6,M5) / f(M2,M4) / f(M1)` →
//! `f(M7,M3,M8,M6,M5) / f(M2,M4,M1)` → `f(M1..M8)` of Figure 2.

use gridagg::core::scope::ScopeIndex;
use gridagg::prelude::*;

/// Members are 0-indexed: `M{i+1}` is `MemberId(i)`.
/// Figure 1 box assignment: {M7,M3,M8}→00, {M6,M5}→01, {M2,M4}→10, {M1}→11.
fn figure1_placement() -> (Hierarchy, ExplicitPlacement) {
    let h = Hierarchy::for_group(2, 8).unwrap();
    let b = |i: u64| h.box_at(i);
    let table = vec![
        b(3), // M1 -> 11
        b(2), // M2 -> 10
        b(0), // M3 -> 00
        b(2), // M4 -> 10
        b(1), // M5 -> 01
        b(1), // M6 -> 01
        b(0), // M7 -> 00
        b(0), // M8 -> 00
    ];
    (h, ExplicitPlacement::new(h, table))
}

#[test]
fn figure1_hierarchy_shape() {
    let (h, _) = figure1_placement();
    assert_eq!(h.depth(), 2, "two-digit box addresses");
    assert_eq!(h.num_boxes(), 4, "grid boxes 00 01 10 11");
    assert_eq!(h.phases(), 3, "log_2 8 = 3 phases");
}

#[test]
fn figure1_subtrees() {
    let (h, p) = figure1_placement();
    // M7 (index 6) is in box 00; its phase scopes walk Figure 1's tree.
    let m7 = p.place(MemberId(6));
    assert_eq!(m7.to_string(), "00");
    assert_eq!(h.scope(&m7, 1).display_depth(2), "00");
    assert_eq!(h.scope(&m7, 2).display_depth(2), "0*");
    assert_eq!(h.scope(&m7, 3).display_depth(2), "**");
    // M1 (index 0) is alone in box 11 under subtree 1*.
    let m1 = p.place(MemberId(0));
    assert_eq!(h.scope(&m1, 2).display_depth(2), "1*");
}

#[test]
fn figure2_bottom_up_evaluation() {
    let (h, p) = figure1_placement();
    let view = View::complete(8);
    let index = ScopeIndex::build(&view, &p);
    // votes: member i votes i+1 (M1 votes 1.0 ... M8 votes 8.0)
    let vote = |i: u32| (i + 1) as f64;

    // Phase 1: per-box aggregates, as in Figure 2's first row.
    let box00: Vec<u32> = index.members_in(&h.box_at(0)).iter().map(|m| m.0).collect();
    assert_eq!(box00, vec![2, 6, 7], "box 00 holds M3, M7, M8");

    let phase1 = |box_idx: u64| -> Tagged<Average> {
        let mut acc = Tagged::empty(8);
        for &m in index.members_in(&h.box_at(box_idx)) {
            acc.try_merge(&Tagged::from_vote(m.index(), vote(m.0), 8))
                .unwrap();
        }
        acc
    };
    let f00 = phase1(0); // f(M7,M3,M8) = avg(7,3,8)
    let f01 = phase1(1); // f(M6,M5)   = avg(6,5)
    let f10 = phase1(2); // f(M2,M4)   = avg(2,4)
    let f11 = phase1(3); // f(M1)      = 1
    assert_eq!(f00.aggregate().unwrap().summary(), 6.0);
    assert_eq!(f01.aggregate().unwrap().summary(), 5.5);
    assert_eq!(f10.aggregate().unwrap().summary(), 3.0);
    assert_eq!(f11.aggregate().unwrap().summary(), 1.0);

    // Phase 2: f(M7,M3,M8,M6,M5) and f(M2,M4,M1), Figure 2's second row.
    let mut f0 = f00.clone();
    f0.try_merge(&f01).unwrap();
    let mut f1 = f10.clone();
    f1.try_merge(&f11).unwrap();
    assert_eq!(
        f0.aggregate().unwrap().summary(),
        (7.0 + 3.0 + 8.0 + 6.0 + 5.0) / 5.0
    );
    assert_eq!(f1.aggregate().unwrap().summary(), (2.0 + 4.0 + 1.0) / 3.0);

    // Phase 3: f(M1..M8).
    let mut root = f0;
    root.try_merge(&f1).unwrap();
    assert_eq!(root.aggregate().unwrap().summary(), 4.5);
    assert_eq!(root.completeness(8), 1.0);
}

#[test]
fn figure2_protocol_run_matches_hand_evaluation() {
    // Run the actual gossip protocol over the Figure 1 hierarchy on a
    // perfect network; every member must converge to f(M1..M8) = 4.5.
    let (_, p) = figure1_placement();
    let view = View::complete(8);
    let index = ScopeIndex::build(&view, &p);
    let protocols: Vec<HierGossip<Average>> = (0..8u32)
        .map(|i| {
            HierGossip::new(
                MemberId(i),
                (i + 1) as f64,
                index.clone(),
                HierGossipConfig::default(),
            )
        })
        .collect();
    let net = SimNetwork::new(NetworkConfig::default(), 5);
    let failure = gridagg::group::failure::FailureProcess::new(FailureModel::None, 8, 5);
    let report = Simulation::new(net, protocols, failure, 5, 4.5, 1000).run();
    assert_eq!(report.completed(), 8);
    assert_eq!(report.mean_completeness(), Some(1.0));
    assert!(report.mean_value_error().unwrap() < 1e-12);
}

#[test]
fn figure3_topological_quadrants_are_spatially_coherent() {
    // Figure 3: the eight sensors are divided into four *spatial
    // regions*. The paper's hand-drawn division has unequal boxes
    // (3/2/2/1); our Grid Location Scheme adaptation balances the
    // expected counts ("tailored to have an equal expected number of
    // members"), so we verify the spatial-coherence property on a
    // balanced layout: four quadrant pairs, each pair sharing a box,
    // left/right halves split by the most significant digit.
    let h = Hierarchy::for_group(2, 8).unwrap();
    let positions = vec![
        Position::new(0.9, 0.9),  // M1  right-top
        Position::new(0.8, 0.1),  // M2  right-bottom
        Position::new(0.1, 0.2),  // M3  left-bottom
        Position::new(0.9, 0.2),  // M4  right-bottom
        Position::new(0.2, 0.9),  // M5  left-top
        Position::new(0.1, 0.8),  // M6  left-top
        Position::new(0.2, 0.1),  // M7  left-bottom
        Position::new(0.85, 0.8), // M8  right-top
    ];
    let p = TopologicalPlacement::new(h, &positions);
    // quadrant pairs share boxes
    for (a, b) in [(2u32, 6u32), (4, 5), (1, 3), (0, 7)] {
        assert_eq!(
            p.place(MemberId(a)),
            p.place(MemberId(b)),
            "M{} / M{}",
            a + 1,
            b + 1
        );
    }
    // all four boxes are distinct
    let mut boxes: Vec<String> = [0u32, 1, 2, 4]
        .iter()
        .map(|&i| p.place(MemberId(i)).to_string())
        .collect();
    boxes.sort();
    boxes.dedup();
    assert_eq!(boxes.len(), 4);
    // left half (M3, M5, M6, M7) and right half differ in the most
    // significant digit, so the phase-2 subtrees 0*/1* are the spatial
    // halves — Figure 3's hierarchy structure
    assert_eq!(p.place(MemberId(2)).digit(0), p.place(MemberId(4)).digit(0));
    assert_ne!(p.place(MemberId(2)).digit(0), p.place(MemberId(0)).digit(0));
    assert_eq!(p.place(MemberId(0)).digit(0), p.place(MemberId(1)).digit(0));
}
