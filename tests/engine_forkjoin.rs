//! Fork-join engine equivalence: a parallel run must be *byte-identical*
//! to the serial run — not statistically close, identical.
//!
//! The engine's contract (DESIGN.md §16) is that `engine_jobs` is a pure
//! execution knob: worker threads step disjoint member ranges, and a
//! serial replay phase applies every send to the network — and emits
//! every trace event — in exactly the order the serial engine would
//! have, so the single shared net RNG consumes an identical stream.
//!
//! These tests hold that contract across the whole protocol surface:
//! all five protocols with full trace recording, and the continuous
//! service under churn, each compared at engine threads 1 vs 2 vs 4 by
//! diffing the complete trace streams (every event, in order) and the
//! full `RunReport` (outcomes, network accounting, step counts), not
//! just summary aggregates.

use gridagg_aggregate::Average;
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::continuous::{run_continuous, ContinuousOptions, ContinuousProtocol};
use gridagg_core::periodic::VoteProcess;
use gridagg_core::runner::{
    run_centralized_traced, run_flatgossip_traced, run_flood_traced, run_hiergossip_traced,
    run_leader_election_traced,
};
use gridagg_core::trace::RunTrace;
use gridagg_core::RunReport;
use gridagg_group::membership::ChurnModel;

const THREADS: [usize; 2] = [2, 4];

/// A lossy, crashy scenario: equivalence must survive the failure
/// process and loss draws, not just the happy path.
fn cfg(n: usize, jobs: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_engine_jobs(jobs);
    c.pf = 0.01;
    c.validate().expect("scenario config is valid");
    c
}

/// Compare two traced runs field-by-field. The trace comparison walks
/// the streams event-by-event so a divergence names the first differing
/// index instead of dumping two multi-thousand-event vectors.
fn assert_identical(
    protocol: &str,
    jobs: usize,
    serial: &(RunReport, RunTrace),
    par: &(RunReport, RunTrace),
) {
    let (sr, st) = serial;
    let (pr, pt) = par;
    assert_eq!(
        format!("{sr:?}"),
        format!("{pr:?}"),
        "{protocol}: RunReport diverged at engine_jobs={jobs}"
    );
    assert_eq!(
        st.events.len(),
        pt.events.len(),
        "{protocol}: trace length diverged at engine_jobs={jobs}"
    );
    for (i, (a, b)) in st.events.iter().zip(&pt.events).enumerate() {
        assert_eq!(
            a,
            b,
            "{protocol}: trace event {i}/{} diverged at engine_jobs={jobs}",
            st.events.len()
        );
    }
}

#[test]
fn all_protocols_byte_identical_across_engine_threads() {
    let n = 192;
    let seed = 41;
    type Traced = fn(&ExperimentConfig, u64) -> (RunReport, RunTrace);
    let protocols: [(&str, Traced); 5] = [
        ("hiergossip", |c, s| run_hiergossip_traced::<Average>(c, s)),
        ("flatgossip", |c, s| run_flatgossip_traced::<Average>(c, s)),
        ("flood", |c, s| {
            run_flood_traced::<Average>(c, FloodConfig::default(), s)
        }),
        ("centralized", |c, s| {
            run_centralized_traced::<Average>(c, CentralizedConfig::for_group(c.n), s)
        }),
        ("leader", |c, s| {
            run_leader_election_traced::<Average>(c, LeaderElectionConfig::default(), s)
        }),
    ];
    for (name, run) in protocols {
        let serial = run(&cfg(n, 1), seed);
        assert!(
            !serial.1.events.is_empty(),
            "{name}: traced serial run recorded no events — the comparison would be vacuous"
        );
        for jobs in THREADS {
            let par = run(&cfg(n, jobs), seed);
            assert_identical(name, jobs, &serial, &par);
        }
    }
}

#[test]
fn continuous_service_byte_identical_across_engine_threads() {
    let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
    opts.epochs = 6;
    opts.churn = ChurnModel {
        join_rate: 1.0,
        leave_prob: 0.01,
        crash_prob: 0.03,
        recover_prob: 0.5,
    };
    opts.votes = VoteProcess::RandomWalk { sigma: 0.5 };
    opts.recovery = 0.3;
    for protocol in [
        ContinuousProtocol::HierGossipRestart,
        ContinuousProtocol::FlowUpdating,
    ] {
        opts.protocol = protocol;
        let serial = run_continuous(&cfg(96, 1), &opts, 23);
        for jobs in THREADS {
            let par = run_continuous(&cfg(96, jobs), &opts, 23);
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "{protocol:?}: continuous outcome diverged at engine_jobs={jobs}"
            );
        }
    }
}
