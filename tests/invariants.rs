//! Property-style tests of the system's core invariants, driven by a
//! seeded [`DetRng`] instead of an external fuzzing framework: every
//! case is deterministic and reproducible from the loop index while
//! still sweeping a wide randomized input space per test.

use gridagg::aggregate::wire::WireAggregate;
use gridagg::analysis;
use gridagg::prelude::*;
use gridagg::simnet::rng::{splitmix64, unit_interval, DetRng};

/// Cases per randomized test (cheap structural checks).
const CASES: usize = 64;
/// Cases per full-simulation test (each case is an entire run).
const SIM_CASES: usize = 12;

fn rng_for(label: u64) -> DetRng {
    DetRng::seeded(0xC0FF_EE00 ^ label)
}

fn random_votes(rng: &mut DetRng) -> Vec<f64> {
    let len = 2 + rng.below(38);
    (0..len).map(|_| (rng.unit() - 0.5) * 2e6).collect()
}

fn fold<A: Aggregate>(votes: &[f64]) -> A {
    let mut acc = A::from_vote(votes[0]);
    for &v in &votes[1..] {
        acc.merge(&A::from_vote(v));
    }
    acc
}

// ---------------------------------------------------------------------
// Aggregate laws: merge is commutative and grouping-insensitive (the
// composability property the whole protocol rests on).
// ---------------------------------------------------------------------

macro_rules! aggregate_law_tests {
    ($name:ident, $agg:ty, $tol:expr, $label:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn merge_commutes() {
                let mut rng = rng_for($label);
                for case in 0..CASES {
                    let a = random_votes(&mut rng);
                    let b = random_votes(&mut rng);
                    let mut ab: $agg = fold(&a);
                    ab.merge(&fold::<$agg>(&b));
                    let mut ba: $agg = fold(&b);
                    ba.merge(&fold::<$agg>(&a));
                    assert!(
                        (ab.summary() - ba.summary()).abs() <= $tol * ab.summary().abs().max(1.0),
                        "case {case}: {} vs {}",
                        ab.summary(),
                        ba.summary()
                    );
                }
            }

            #[test]
            fn grouping_is_irrelevant() {
                let mut rng = rng_for($label ^ 0xFF);
                for case in 0..CASES {
                    let votes = random_votes(&mut rng);
                    let split = 1 + rng.below(votes.len() - 1);
                    let flat: $agg = fold(&votes);
                    let mut grouped: $agg = fold(&votes[..split]);
                    grouped.merge(&fold::<$agg>(&votes[split..]));
                    assert!(
                        (flat.summary() - grouped.summary()).abs()
                            <= $tol * flat.summary().abs().max(1.0),
                        "case {case} at split {split}"
                    );
                }
            }
        }
    };
}

aggregate_law_tests!(average_laws, Average, 1e-9, 1);
aggregate_law_tests!(sum_laws, Sum, 1e-9, 2);
aggregate_law_tests!(count_laws, Count, 0.0, 3);
aggregate_law_tests!(min_laws, Min, 0.0, 4);
aggregate_law_tests!(max_laws, Max, 0.0, 5);
aggregate_law_tests!(meanvar_laws, MeanVar, 1e-6, 6);
aggregate_law_tests!(topk_laws, TopK, 0.0, 7);

// ---------------------------------------------------------------------
// No-double-counting: Tagged::try_merge must reject overlap and must
// leave the receiver unchanged on failure.
// ---------------------------------------------------------------------

#[test]
fn tagged_rejects_any_overlap() {
    let mut rng = rng_for(10);
    let sample = |rng: &mut DetRng| -> std::collections::BTreeSet<usize> {
        let len = 1 + rng.below(29);
        (0..len).map(|_| rng.below(128)).collect()
    };
    let build = |members: &std::collections::BTreeSet<usize>| {
        let mut acc = Tagged::<Average>::empty(128);
        for &m in members {
            acc.try_merge(&Tagged::from_vote(m, m as f64, 128)).unwrap();
        }
        acc
    };
    for case in 0..CASES {
        let left = sample(&mut rng);
        let right = sample(&mut rng);
        let mut a = build(&left);
        let b = build(&right);
        let before = a.clone();
        let overlaps = left.intersection(&right).next().is_some();
        let result = a.try_merge(&b);
        if overlaps {
            assert!(result.is_err(), "case {case}: overlap must be rejected");
            assert_eq!(a, before, "case {case}: failed merge must not mutate");
        } else {
            assert!(result.is_ok(), "case {case}");
            assert_eq!(a.vote_count(), left.len() + right.len());
        }
    }
}

#[test]
fn voteset_union_is_idempotent_and_monotone() {
    let mut rng = rng_for(11);
    let sample = |rng: &mut DetRng| -> Vec<usize> {
        let len = rng.below(64);
        (0..len).map(|_| rng.below(512)).collect()
    };
    for _ in 0..CASES {
        let xs = sample(&mut rng);
        let ys = sample(&mut rng);
        let a: VoteSet = xs.iter().copied().collect();
        let b: VoteSet = ys.iter().copied().collect();
        let mut u = a.clone();
        u.union_with(&b);
        // union contains both operands
        for &x in &xs {
            assert!(u.contains(x));
        }
        for &y in &ys {
            assert!(u.contains(y));
        }
        // idempotent
        let mut uu = u.clone();
        uu.union_with(&b);
        assert_eq!(&uu, &u);
        // cardinality bounds
        assert!(u.len() >= a.len().max(b.len()));
        assert!(u.len() <= a.len() + b.len());
    }
}

// ---------------------------------------------------------------------
// Hierarchy address algebra.
// ---------------------------------------------------------------------

#[test]
fn addr_index_roundtrip() {
    let mut rng = rng_for(20);
    for _ in 0..CASES {
        let base = 2 + rng.below(6) as u8;
        let len = 1 + rng.below(5);
        let boxes = (base as u64).pow(len as u32);
        let idx = splitmix64(rng.raw().next_u64()) % boxes;
        let a = Addr::from_index(base, len, idx).unwrap();
        assert_eq!(a.index(), idx);
        assert_eq!(a.len(), len);
    }
}

#[test]
fn prefix_containment_is_transitive() {
    let mut rng = rng_for(21);
    for _ in 0..CASES {
        let base = 2 + rng.below(3) as u8;
        let len = 4usize;
        let boxes = (base as u64).pow(len as u32);
        let a = Addr::from_index(base, len, splitmix64(rng.raw().next_u64()) % boxes).unwrap();
        for l1 in 0..=len {
            for l2 in 0..=l1 {
                let p1 = a.prefix(l1);
                let p2 = a.prefix(l2);
                assert!(p2.contains(&p1), "{p2} should contain {p1}");
                assert!(p1.contains(&a));
                assert!(p2.contains(&a));
            }
        }
    }
}

#[test]
fn scopes_grow_with_phase() {
    let mut rng = rng_for(22);
    for _ in 0..CASES {
        let k = 2 + rng.below(4) as u8;
        let n = 16 + rng.below(1984);
        let h = Hierarchy::for_group(k, n).unwrap();
        let boxes = h.num_boxes();
        let b = h.box_at(splitmix64(rng.raw().next_u64()) % boxes);
        let mut prev_len = h.depth() + 1;
        for phase in 1..=h.phases() {
            let scope = h.scope(&b, phase);
            assert!(scope.len() < prev_len, "scopes must strictly widen");
            assert!(scope.contains(&b));
            prev_len = scope.len();
        }
        assert_eq!(h.scope(&b, h.phases()).len(), 0, "final scope is the root");
    }
}

#[test]
fn fair_hash_is_total_and_in_range() {
    let mut rng = rng_for(23);
    for _ in 0..CASES {
        let k = 2 + rng.below(4) as u8;
        let n = 16 + rng.below(1984);
        let salt = rng.raw().next_u64();
        let h = Hierarchy::for_group(k, n).unwrap();
        let p = FairHashPlacement::new(h, salt);
        for i in (0..n as u32).step_by(17) {
            let a = p.place(MemberId(i));
            assert_eq!(a.len(), h.depth());
            assert!(a.index() < h.num_boxes());
        }
    }
}

#[test]
fn unit_interval_is_in_range() {
    let mut rng = rng_for(24);
    for _ in 0..4096 {
        let u = unit_interval(rng.raw().next_u64());
        assert!((0.0..1.0).contains(&u));
    }
    // edge inputs
    assert!((0.0..1.0).contains(&unit_interval(0)));
    assert!((0.0..1.0).contains(&unit_interval(u64::MAX)));
}

// ---------------------------------------------------------------------
// Analysis: bounds stay within [0, 1] and respect monotonicity.
// ---------------------------------------------------------------------

#[test]
fn completeness_bounds_are_probabilities() {
    let mut rng = rng_for(30);
    for _ in 0..CASES {
        let n = 10 + rng.below(4990) as u64;
        let k = 2.0 + rng.unit() * 14.0;
        let b = 0.25 + rng.unit() * 5.75;
        let c1 = analysis::c1(n, k, b);
        let ci = analysis::ci_lower_bound(n as f64, k, b);
        let inc = analysis::c1_incompleteness(n, k, b);
        assert!((0.0..=1.0).contains(&c1));
        assert!((0.0..=1.0).contains(&ci));
        assert!((0.0..=1.0).contains(&inc));
        assert!((c1 + inc - 1.0).abs() < 1e-9 || inc < 1e-12);
    }
}

#[test]
fn epidemic_noninfected_decreases() {
    let mut rng = rng_for(31);
    for _ in 0..CASES {
        let m = 2.0 + rng.unit() * 9998.0;
        let b = 0.1 + rng.unit() * 7.9;
        let mut prev = analysis::noninfected(m, b, 0.0);
        for t in 1..10 {
            let x = analysis::noninfected(m, b, t as f64);
            assert!(x <= prev + 1e-12);
            assert!(x >= 0.0);
            prev = x;
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end protocol invariants (small groups; randomized parameters
// with a reduced case count because each case is a full simulation).
// ---------------------------------------------------------------------

#[test]
fn protocol_never_double_counts_and_stays_in_unit_range() {
    let mut rng = rng_for(40);
    for case in 0..SIM_CASES {
        let n = 8 + rng.below(112);
        let k = 2 + rng.below(4) as u8;
        let ucastl = rng.unit() * 0.6;
        let seed = rng.raw().next_u64() % 1_000_003;
        let mut cfg = ExperimentConfig::paper_defaults()
            .with_n(n)
            .with_ucastl(ucastl);
        cfg.k = k;
        cfg.pf = 0.0;
        // Tagged::try_merge panics inside the protocol if a vote would
        // be double counted, so simply completing the run checks the
        // invariant; completeness is additionally a probability.
        let report = run_hiergossip::<Average>(&cfg, seed);
        for o in &report.outcomes {
            if let MemberOutcome::Completed { completeness, .. } = o {
                assert!(
                    (0.0..=1.0).contains(completeness),
                    "case {case}: completeness {completeness}"
                );
            }
        }
        assert!(report.mean_incompleteness() >= 0.0);
        assert!(report.messages() > 0, "case {case}");
    }
}

#[test]
fn estimates_bounded_by_vote_range() {
    let mut rng = rng_for(41);
    for case in 0..SIM_CASES {
        // Average of votes in [lo, hi] must stay inside [lo, hi] for
        // every member, complete or not (no-double-counting implies the
        // estimate is a true average of a vote subset).
        let n = 8 + rng.below(92);
        let seed = rng.raw().next_u64() % 1_000_003;
        let mut cfg = ExperimentConfig::paper_defaults().with_n(n);
        cfg.vote = VoteSpec::Uniform { lo: 40.0, hi: 60.0 };
        let report = run_hiergossip::<Average>(&cfg, seed);
        for o in &report.outcomes {
            if let MemberOutcome::Completed { value, .. } = o {
                assert!(
                    (40.0..=60.0).contains(value),
                    "case {case}: estimate {value} out of range"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire codec fuzz: decoding arbitrary bytes must never panic, and
// encode→decode must round-trip.
// ---------------------------------------------------------------------

#[test]
fn wire_decode_never_panics() {
    let mut rng = rng_for(50);
    for _ in 0..256 {
        let len = rng.below(64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = Average::decode(&mut bytes.as_slice());
        let _ = Sum::decode(&mut bytes.as_slice());
        let _ = Min::decode(&mut bytes.as_slice());
        let _ = Max::decode(&mut bytes.as_slice());
        let _ = Count::decode(&mut bytes.as_slice());
        let _ = Histogram16::decode(&mut bytes.as_slice());
        let _ = TopK::decode(&mut bytes.as_slice());
        let _ = MeanVar::decode(&mut bytes.as_slice());
    }
}

#[test]
fn wire_roundtrip_average() {
    let mut rng = rng_for(51);
    for _ in 0..CASES {
        let votes = random_votes(&mut rng);
        let a: Average = fold(&votes);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        assert_eq!(buf.len(), a.wire_size());
        let d = Average::decode(&mut buf.as_slice()).unwrap();
        assert!((d.summary() - a.summary()).abs() < 1e-9);
    }
}

#[test]
fn wire_roundtrip_topk() {
    let mut rng = rng_for(52);
    for _ in 0..CASES {
        let votes = random_votes(&mut rng);
        let t: TopK = fold(&votes);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let d = TopK::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(d, t);
    }
}
