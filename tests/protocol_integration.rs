//! Cross-crate integration tests: full protocol runs assembled from the
//! public API, exercising every aggregate type, every loss model, and
//! every protocol.

use gridagg::prelude::*;

fn perfect(n: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_ucastl(0.0);
    c.pf = 0.0;
    c
}

#[test]
fn every_aggregate_type_runs_hierarchically() {
    let mut cfg = perfect(64);
    cfg.vote = VoteSpec::Uniform { lo: 10.0, hi: 90.0 };
    macro_rules! check {
        ($agg:ty) => {
            let report = run_hiergossip::<$agg>(&cfg, 11);
            assert!(
                report.mean_completeness().unwrap() > 0.95,
                concat!(stringify!($agg), " incomplete")
            );
        };
    }
    check!(Average);
    check!(Sum);
    check!(Count);
    check!(Min);
    check!(Max);
    check!(MeanVar);
    check!(Histogram16);
    check!(TopK);
}

#[test]
fn min_max_match_ground_truth_exactly_when_complete() {
    let mut cfg = perfect(128);
    cfg.vote = VoteSpec::Index;
    let min_report = run_hiergossip::<Min>(&cfg, 3);
    let max_report = run_hiergossip::<Max>(&cfg, 3);
    // index votes: min 0, max 127
    assert_eq!(min_report.true_value, 0.0);
    assert_eq!(max_report.true_value, 127.0);
    for report in [min_report, max_report] {
        for o in &report.outcomes {
            if let MemberOutcome::Completed {
                completeness,
                value,
                ..
            } = o
            {
                if *completeness == 1.0 {
                    assert_eq!(*value, report.true_value);
                }
            }
        }
    }
}

#[test]
fn count_aggregate_counts_members() {
    let cfg = perfect(100);
    let report = run_hiergossip::<Count>(&cfg, 5);
    assert_eq!(report.true_value, 100.0);
    let complete_and_right = report
        .outcomes
        .iter()
        .filter(|o| {
            matches!(o, MemberOutcome::Completed { completeness, value, .. }
                if *completeness == 1.0 && *value == 100.0)
        })
        .count();
    assert!(complete_and_right > 90);
}

#[test]
fn larger_k_means_fewer_phases_and_taller_boxes() {
    let mut small_k = perfect(256);
    small_k.k = 2;
    let mut large_k = perfect(256);
    large_k.k = 16;
    let a = run_hiergossip::<Average>(&small_k, 1);
    let b = run_hiergossip::<Average>(&large_k, 1);
    // both complete, but the deep hierarchy takes more rounds
    assert!(a.mean_completeness().unwrap() > 0.95);
    assert!(b.mean_completeness().unwrap() > 0.95);
    assert!(
        a.last_completion().unwrap() > b.last_completion().unwrap(),
        "K=2 ({} rounds) should be slower than K=16 ({} rounds)",
        a.last_completion().unwrap(),
        b.last_completion().unwrap()
    );
}

#[test]
fn all_protocols_agree_on_perfect_network() {
    let n = 64;
    let cfg = perfect(n);
    let reports = [
        run_hiergossip::<Average>(&cfg, 2),
        run_flood::<Average>(&cfg, FloodConfig::default(), 2),
        run_centralized::<Average>(&cfg, CentralizedConfig::for_group(n), 2),
        run_leader_election::<Average>(&cfg, LeaderElectionConfig::default(), 2),
    ];
    let truth = reports[0].true_value;
    for r in &reports {
        assert_eq!(r.true_value, truth, "same group, same ground truth");
        assert!(r.mean_completeness().unwrap() > 0.99);
    }
}

#[test]
fn committee_variant_tolerates_single_leader_crash() {
    // Crash injection with recovery disabled; committee K'=3 should beat
    // K'=1 in expectation across seeds.
    let mut cfg = ExperimentConfig::paper_defaults()
        .with_n(128)
        .with_ucastl(0.0);
    cfg.pf = 0.004;
    let avg = |committee: usize| {
        let reports = run_many(12, 77, |seed| {
            run_leader_election::<Average>(
                &cfg,
                LeaderElectionConfig {
                    committee,
                    ..Default::default()
                },
                seed,
            )
        });
        summarize(&reports).mean_incompleteness
    };
    let single = avg(1);
    let committee = avg(3);
    assert!(
        committee < single,
        "K'=3 ({committee}) should beat K'=1 ({single})"
    );
}

#[test]
fn soft_partition_degrades_gracefully() {
    let cfg = ExperimentConfig::paper_defaults().with_partl(0.7);
    let reports = run_many(10, 5, |seed| run_hiergossip::<Average>(&cfg, seed));
    let s = summarize(&reports);
    // Figure 9's qualitative claim: no collapse even at partl = 0.7
    assert!(
        s.mean_incompleteness < 0.25,
        "incompleteness {} under partition",
        s.mean_incompleteness
    );
}

#[test]
fn crash_recovery_model_is_available() {
    // The paper's model (§2) allows crash *and recovery*; the failure
    // substrate supports it even though §7 uses crash-only.
    use gridagg::group::failure::{FailureProcess, LivenessEvent};
    let mut p = FailureProcess::new(
        FailureModel::PerRoundWithRecovery { pf: 0.3, pr: 0.5 },
        50,
        9,
    );
    let mut crashed = 0;
    let mut recovered = 0;
    for r in 0..40 {
        for e in p.step(r) {
            match e {
                LivenessEvent::Crashed(_) => crashed += 1,
                LivenessEvent::Recovered(_) => recovered += 1,
            }
        }
    }
    assert!(crashed > 0 && recovered > 0);
}

#[test]
fn wire_codec_round_trips_across_the_stack() {
    // An aggregate produced by a protocol run survives the wire codec.
    use bytes_roundtrip::check;
    let cfg = perfect(32);
    let report = run_hiergossip::<Average>(&cfg, 4);
    let value = report
        .outcomes
        .iter()
        .find_map(|o| match o {
            MemberOutcome::Completed { value, .. } => Some(*value),
            _ => None,
        })
        .unwrap();
    check(value, 32);
}

mod bytes_roundtrip {
    use gridagg::aggregate::wire::WireAggregate;
    use gridagg::aggregate::{Aggregate, Average};

    pub fn check(mean: f64, count: u64) {
        let agg = Average::from_parts(mean * count as f64, count);
        let mut buf = Vec::new();
        agg.encode(&mut buf);
        let decoded = Average::decode(&mut buf.as_slice()).unwrap();
        assert!((decoded.summary() - agg.summary()).abs() < 1e-9);
    }
}

#[test]
fn bandwidth_cap_limits_but_does_not_break_gossip() {
    let mut cfg = ExperimentConfig::paper_defaults();
    // fanout 2 pushes + replies per round; cap at 4 sends/round
    cfg.bandwidth_cap = Some(4);
    let report = run_hiergossip::<Average>(&cfg, 6);
    assert!(report.mean_completeness().unwrap() > 0.9);
}

#[test]
fn reports_are_reproducible_across_identical_runs() {
    let cfg = ExperimentConfig::paper_defaults();
    let a = run_hiergossip::<Average>(&cfg, 31337);
    let b = run_hiergossip::<Average>(&cfg, 31337);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.net.sent, b.net.sent);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x, y);
    }
}

#[test]
fn partial_views_degrade_gracefully() {
    // §2 relaxation: smaller views → lower completeness, never a crash
    let mut small = ExperimentConfig::paper_defaults();
    small.partial_view = Some(40);
    let mut large = ExperimentConfig::paper_defaults();
    large.partial_view = Some(150);
    let s = summarize(&run_many(6, 3, |seed| {
        run_hiergossip::<Average>(&small, seed)
    }));
    let l = summarize(&run_many(6, 3, |seed| {
        run_hiergossip::<Average>(&large, seed)
    }));
    assert!(
        l.mean_incompleteness < s.mean_incompleteness,
        "larger views must help: {} vs {}",
        l.mean_incompleteness,
        s.mean_incompleteness
    );
    assert!(l.mean_incompleteness < 0.05);
}

#[test]
fn approximate_n_estimate_suffices() {
    // §6.1: "an approximate estimate of N at each member usually suffices"
    for est in [64usize, 500] {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.n_estimate = Some(est);
        let s = summarize(&run_many(6, 9, |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        }));
        assert!(
            s.mean_incompleteness < 0.1,
            "estimate {est}: incompleteness {}",
            s.mean_incompleteness
        );
    }
}

#[test]
fn staggered_multicast_initiation_works() {
    let mut cfg = ExperimentConfig::paper_defaults();
    cfg.start_spread = Some(8);
    let s = summarize(&run_many(6, 21, |seed| {
        run_hiergossip::<Average>(&cfg, seed)
    }));
    assert!(
        s.mean_incompleteness < 0.1,
        "staggered start incompleteness {}",
        s.mean_incompleteness
    );
}

#[test]
fn predicate_aggregates_answer_threshold_queries() {
    use gridagg::aggregate::{All, Any};
    // votes are 0/1 predicates: "is my reading above the threshold?"
    let mut cfg = perfect(64);
    cfg.vote = VoteSpec::Index; // member 0 votes 0.0, everyone else non-zero
    let any = run_hiergossip::<Any>(&cfg, 2);
    let all = run_hiergossip::<All>(&cfg, 2);
    // Any: at least one non-zero vote exists → 1.0 at complete members
    // All: member 0's zero vote breaks the conjunction → 0.0
    for o in &any.outcomes {
        if let MemberOutcome::Completed {
            completeness,
            value,
            ..
        } = o
        {
            if *completeness == 1.0 {
                assert_eq!(*value, 1.0);
            }
        }
    }
    for o in &all.outcomes {
        if let MemberOutcome::Completed {
            completeness,
            value,
            ..
        } = o
        {
            if *completeness == 1.0 {
                assert_eq!(*value, 0.0);
            }
        }
    }
}

#[test]
fn periodic_epochs_survive_failures_end_to_end() {
    use gridagg::core::periodic::{run_periodic, VoteProcess};
    let mut cfg = ExperimentConfig::paper_defaults().with_n(96);
    cfg.pf = 0.005;
    let epochs =
        run_periodic::<Average>(&cfg, VoteProcess::RandomWalk { sigma: 1.0 }, 3, 13).epochs;
    assert_eq!(epochs.len(), 3);
    for e in &epochs {
        assert!(
            e.report.mean_completeness().unwrap_or(0.0) > 0.7,
            "epoch {} completeness collapsed",
            e.epoch
        );
    }
}

#[test]
fn complexity_predictions_bracket_measurements() {
    use gridagg::analysis;
    let cfg = perfect(256);
    let report = run_hiergossip::<Average>(&cfg, 5);
    let predicted_rounds = analysis::expected_rounds(256, 4, 2, 1.0);
    let predicted_msgs = analysis::expected_messages(256, 4, 2, 1.0);
    // early bump finishes below the synchronous schedule; replies at
    // most double the push count
    assert!(report.rounds <= predicted_rounds + 8);
    assert!(
        report.messages() <= 2 * predicted_msgs,
        "{} vs 2x{}",
        report.messages(),
        predicted_msgs
    );
    assert!(
        report.messages() >= predicted_msgs / 8,
        "{} vs {}/8",
        report.messages(),
        predicted_msgs
    );
}
