//! Failure-injection scenarios beyond the paper's uniform models:
//! targeted box wipes, healing networks, distance-dependent radio loss,
//! and delay jitter — each exercising a different substrate feature
//! end to end.

use gridagg::core::scope::ScopeIndex;
use gridagg::prelude::*;
use gridagg::simnet::delay::GeometricDelay;
use gridagg::simnet::loss::{DistanceLoss, SwitchLoss, UniformLoss};
use gridagg::simnet::topology::{make_field, FieldKind};

fn build_protocols(
    n: usize,
    seed: u64,
    k: u8,
) -> (Vec<HierGossip<Average>>, std::sync::Arc<ScopeIndex>, f64) {
    let group = GroupBuilder::new(n)
        .votes(VoteDistribution::Index)
        .seed(seed)
        .build();
    let h = Hierarchy::for_group(k, n).unwrap();
    let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed));
    let protocols = group
        .members()
        .iter()
        .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
        .collect();
    let truth = (n as f64 - 1.0) / 2.0;
    (protocols, index, truth)
}

fn run_with(
    protocols: Vec<HierGossip<Average>>,
    net: SimNetwork<gridagg::core::Payload<Average>>,
    failure: gridagg::group::failure::FailureProcess,
    seed: u64,
    truth: f64,
) -> RunReport {
    Simulation::new(net, protocols, failure, seed, truth, 2000).run()
}

#[test]
fn wiping_an_entire_box_loses_only_that_box() {
    // schedule every member of one grid box to crash at round 0: their
    // votes are unrecoverable, everything else must survive.
    let n = 128;
    let seed = 6;
    let (protocols, index, truth) = build_protocols(n, seed, 4);
    let h = *index.hierarchy();
    // pick the first non-empty box
    let victim_box = (0..h.num_boxes())
        .map(|i| h.box_at(i))
        .find(|b| index.count_in(b) > 0)
        .expect("some box is populated");
    let victims: Vec<MemberId> = index.members_in(&victim_box).to_vec();
    let crashes: Vec<(Round, MemberId)> = victims.iter().map(|&m| (0, m)).collect();
    let failure =
        gridagg::group::failure::FailureProcess::new(FailureModel::Scheduled { crashes }, n, seed);
    let net = SimNetwork::new(NetworkConfig::default(), seed);
    let report = run_with(protocols, net, failure, seed, truth);

    assert_eq!(report.crashed(), victims.len());
    // The victims' votes are a hard ceiling: no completed member can
    // exceed the box-loss floor...
    let floor = 1.0 - victims.len() as f64 / n as f64;
    for o in &report.outcomes {
        if let MemberOutcome::Completed { completeness, .. } = o {
            assert!(*completeness <= floor + 1e-9);
        }
    }
    // ...and the knock-on cost is bounded: with no failure detection
    // (per the paper) the victims' scope-mates wait out full phase
    // timeouts and become stragglers, but the group mean stays close to
    // the floor.
    let mean = report.mean_completeness().unwrap();
    assert!(
        mean > floor - 0.1,
        "mean completeness {mean} collapsed past the box-loss floor {floor}"
    );
    assert!(report.completed() >= n - victims.len());
}

#[test]
fn network_healing_mid_run_recovers_completeness() {
    // total blackout for the first 12 rounds, then a perfect network:
    // the per-phase timeouts burn through the blackout but the gossip
    // recovers what the surviving schedule allows — compare to a
    // permanently black network where nothing ever arrives.
    let n = 64;
    let seed = 3;
    let run = |heal_at: Option<Round>| {
        let (protocols, _, truth) = build_protocols(n, seed, 4);
        let loss: Box<dyn gridagg::simnet::loss::LossModel> = match heal_at {
            Some(at) => Box::new(SwitchLoss::new(
                Box::new(UniformLoss::new(1.0).unwrap()),
                Box::new(gridagg::simnet::loss::Perfect),
                at,
            )),
            None => Box::new(UniformLoss::new(1.0).unwrap()),
        };
        let net = SimNetwork::new(NetworkConfig::default().with_boxed_loss(loss), seed);
        let failure = gridagg::group::failure::FailureProcess::new(FailureModel::None, n, seed);
        run_with(protocols, net, failure, seed, truth)
    };
    let healed = run(Some(6));
    let black = run(None);
    assert!(
        healed.mean_completeness().unwrap() > black.mean_completeness().unwrap(),
        "healing must help: {:?} vs {:?}",
        healed.mean_completeness(),
        black.mean_completeness()
    );
    // a permanently black network leaves every member with only its own vote
    assert!(black.mean_completeness().unwrap() < 2.0 / n as f64 + 1e-9);
}

#[test]
fn crash_recovery_through_healing_blackout_never_double_counts() {
    // The paper's crash-recovery model (members "arbitrarily suffer
    // crash failures and then recover", state intact) layered on a
    // network that blacks out and then heals: recovered members
    // re-gossip aggregates their own vote already entered, and the
    // healed network redelivers a burst of stale state. Every merge on
    // those paths must keep contributor sets disjoint — `try_merge`
    // would refuse a double merge, so the observable invariant is that
    // no member's completeness ever exceeds 1.0 and fully-complete
    // members compute the exact truth.
    let n = 128;
    let seed = 17;
    let (protocols, _, truth) = build_protocols(n, seed, 4);
    let loss = SwitchLoss::new(
        Box::new(UniformLoss::new(0.6).unwrap()),
        Box::new(UniformLoss::new(0.05).unwrap()),
        8,
    );
    let net = SimNetwork::new(
        NetworkConfig::default().with_boxed_loss(Box::new(loss)),
        seed,
    );
    let failure = gridagg::group::failure::FailureProcess::new(
        FailureModel::PerRoundWithRecovery { pf: 0.02, pr: 0.3 },
        n,
        seed,
    );
    let report = run_with(protocols, net, failure, seed, truth);

    let mut complete_members = 0;
    for o in &report.outcomes {
        if let MemberOutcome::Completed {
            completeness,
            value,
            ..
        } = o
        {
            assert!(
                *completeness <= 1.0 + 1e-12,
                "completeness {completeness} > 1: a vote was counted twice"
            );
            if (*completeness - 1.0).abs() < 1e-12 {
                complete_members += 1;
                assert!(
                    (*value - truth).abs() < 1e-9,
                    "fully complete member off truth: {value} vs {truth}"
                );
            }
        }
    }
    // the run must actually exercise the interesting paths: members
    // completed despite the blackout, and recovery kept the crash model
    // from simply shrinking the group
    assert!(
        report.completed() > n / 2,
        "too few completed to be meaningful"
    );
    assert!(complete_members > 0, "nobody achieved full completeness");
    assert!(report.mean_completeness().unwrap() > 0.5);
}

#[test]
fn distance_loss_favours_topological_placement() {
    // multihop radio: per-hop loss makes far links unreliable. The
    // topologically-aware hash keeps early phases local, so it should
    // beat the fair hash on the same field.
    let n = 256;
    let seed = 12;
    let field = make_field(FieldKind::UniformRandom, n, &mut DetRng::seeded(seed));
    let h = Hierarchy::for_group(4, n).unwrap();
    let group = GroupBuilder::new(n)
        .votes(VoteDistribution::Index)
        .seed(seed)
        .build();
    let truth = (n as f64 - 1.0) / 2.0;

    let run = |topo: bool| {
        let index = if topo {
            ScopeIndex::build(&View::complete(n), &TopologicalPlacement::new(h, &field))
        } else {
            ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed))
        };
        let protocols: Vec<HierGossip<Average>> = group
            .members()
            .iter()
            .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
            .collect();
        let loss = DistanceLoss::new(field.clone(), 0.25, 0.15).unwrap();
        let net = SimNetwork::new(
            NetworkConfig::default()
                .with_loss(loss)
                .with_positions(field.clone()),
            seed,
        );
        let failure = gridagg::group::failure::FailureProcess::new(FailureModel::None, n, seed);
        run_with(protocols, net, failure, seed, truth)
    };
    let fair = run(false);
    let topo = run(true);
    assert!(
        topo.mean_completeness().unwrap() >= fair.mean_completeness().unwrap(),
        "topo {:?} should not lose to fair {:?} under radio loss",
        topo.mean_completeness(),
        fair.mean_completeness()
    );
}

#[test]
fn geometric_delay_jitter_tolerated() {
    let n = 100;
    let seed = 9;
    let (protocols, _, truth) = build_protocols(n, seed, 4);
    let net = SimNetwork::new(
        NetworkConfig::default().with_delay(GeometricDelay::new(0.4, 4)),
        seed,
    );
    let failure = gridagg::group::failure::FailureProcess::new(FailureModel::None, n, seed);
    let report = run_with(protocols, net, failure, seed, truth);
    assert!(
        report.mean_completeness().unwrap() > 0.85,
        "jitter should only dent completeness: {:?}",
        report.mean_completeness()
    );
}

#[test]
fn max_delay_config_runs_through_runner() {
    let mut cfg = ExperimentConfig::paper_defaults();
    cfg.max_delay = Some(3);
    let report = run_hiergossip::<Average>(&cfg, 5);
    assert!(report.mean_completeness().unwrap() > 0.8);
    // and validation rejects zero
    cfg.max_delay = Some(0);
    assert!(cfg.validate().is_err());
}
