//! Property-based tests of the system's core invariants.

use proptest::prelude::*;

use gridagg::aggregate::wire::WireAggregate;
use gridagg::analysis;
use gridagg::prelude::*;
use gridagg::simnet::rng::{splitmix64, unit_interval};

// ---------------------------------------------------------------------
// Aggregate laws: merge is commutative and grouping-insensitive (the
// composability property the whole protocol rests on).
// ---------------------------------------------------------------------

fn votes_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 2..40)
}

fn fold<A: Aggregate>(votes: &[f64]) -> A {
    let mut acc = A::from_vote(votes[0]);
    for &v in &votes[1..] {
        acc.merge(&A::from_vote(v));
    }
    acc
}

macro_rules! aggregate_law_tests {
    ($name:ident, $agg:ty, $tol:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn merge_commutes(a in votes_strategy(), b in votes_strategy()) {
                    let mut ab: $agg = fold(&a);
                    ab.merge(&fold::<$agg>(&b));
                    let mut ba: $agg = fold(&b);
                    ba.merge(&fold::<$agg>(&a));
                    prop_assert!((ab.summary() - ba.summary()).abs() <= $tol * ab.summary().abs().max(1.0));
                }

                #[test]
                fn grouping_is_irrelevant(votes in votes_strategy(), split in 1usize..39) {
                    prop_assume!(split < votes.len());
                    let flat: $agg = fold(&votes);
                    let mut grouped: $agg = fold(&votes[..split]);
                    grouped.merge(&fold::<$agg>(&votes[split..]));
                    prop_assert!(
                        (flat.summary() - grouped.summary()).abs()
                            <= $tol * flat.summary().abs().max(1.0)
                    );
                }
            }
        }
    };
}

aggregate_law_tests!(average_laws, Average, 1e-9);
aggregate_law_tests!(sum_laws, Sum, 1e-9);
aggregate_law_tests!(count_laws, Count, 0.0);
aggregate_law_tests!(min_laws, Min, 0.0);
aggregate_law_tests!(max_laws, Max, 0.0);
aggregate_law_tests!(meanvar_laws, MeanVar, 1e-6);
aggregate_law_tests!(topk_laws, TopK, 0.0);

// ---------------------------------------------------------------------
// No-double-counting: Tagged::try_merge must reject overlap and must
// leave the receiver unchanged on failure.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tagged_rejects_any_overlap(
        left in prop::collection::btree_set(0usize..128, 1..30),
        right in prop::collection::btree_set(0usize..128, 1..30),
    ) {
        let build = |members: &std::collections::BTreeSet<usize>| {
            let mut acc = Tagged::<Average>::empty(128);
            for &m in members {
                acc.try_merge(&Tagged::from_vote(m, m as f64, 128)).unwrap();
            }
            acc
        };
        let mut a = build(&left);
        let b = build(&right);
        let before = a.clone();
        let overlaps = left.intersection(&right).next().is_some();
        let result = a.try_merge(&b);
        if overlaps {
            prop_assert!(result.is_err());
            prop_assert_eq!(a, before, "failed merge must not mutate");
        } else {
            prop_assert!(result.is_ok());
            prop_assert_eq!(a.vote_count(), left.len() + right.len());
        }
    }

    #[test]
    fn voteset_union_is_idempotent_and_monotone(
        xs in prop::collection::vec(0usize..512, 0..64),
        ys in prop::collection::vec(0usize..512, 0..64),
    ) {
        let a: VoteSet = xs.iter().copied().collect();
        let b: VoteSet = ys.iter().copied().collect();
        let mut u = a.clone();
        u.union_with(&b);
        // union contains both operands
        for &x in &xs { prop_assert!(u.contains(x)); }
        for &y in &ys { prop_assert!(u.contains(y)); }
        // idempotent
        let mut uu = u.clone();
        uu.union_with(&b);
        prop_assert_eq!(&uu, &u);
        // cardinality bounds
        prop_assert!(u.len() >= a.len().max(b.len()));
        prop_assert!(u.len() <= a.len() + b.len());
    }
}

// ---------------------------------------------------------------------
// Hierarchy address algebra.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn addr_index_roundtrip(base in 2u8..8, len in 1usize..6, seed in any::<u64>()) {
        let boxes = (base as u64).pow(len as u32);
        let idx = splitmix64(seed) % boxes;
        let a = Addr::from_index(base, len, idx).unwrap();
        prop_assert_eq!(a.index(), idx);
        prop_assert_eq!(a.len(), len);
    }

    #[test]
    fn prefix_containment_is_transitive(base in 2u8..5, seed in any::<u64>()) {
        let len = 4usize;
        let boxes = (base as u64).pow(len as u32);
        let a = Addr::from_index(base, len, splitmix64(seed) % boxes).unwrap();
        for l1 in 0..=len {
            for l2 in 0..=l1 {
                let p1 = a.prefix(l1);
                let p2 = a.prefix(l2);
                prop_assert!(p2.contains(&p1), "{p2} should contain {p1}");
                prop_assert!(p1.contains(&a));
                prop_assert!(p2.contains(&a));
            }
        }
    }

    #[test]
    fn scopes_grow_with_phase(k in 2u8..6, n in 16usize..2000, seed in any::<u64>()) {
        let h = Hierarchy::for_group(k, n).unwrap();
        let boxes = h.num_boxes();
        let b = h.box_at(splitmix64(seed) % boxes);
        let mut prev_len = h.depth() + 1;
        for phase in 1..=h.phases() {
            let scope = h.scope(&b, phase);
            prop_assert!(scope.len() < prev_len, "scopes must strictly widen");
            prop_assert!(scope.contains(&b));
            prev_len = scope.len();
        }
        prop_assert_eq!(h.scope(&b, h.phases()).len(), 0, "final scope is the root");
    }

    #[test]
    fn fair_hash_is_total_and_in_range(k in 2u8..6, n in 16usize..2000, salt in any::<u64>()) {
        let h = Hierarchy::for_group(k, n).unwrap();
        let p = FairHashPlacement::new(h, salt);
        for i in (0..n as u32).step_by(17) {
            let a = p.place(MemberId(i));
            prop_assert_eq!(a.len(), h.depth());
            prop_assert!(a.index() < h.num_boxes());
        }
    }

    #[test]
    fn unit_interval_is_in_range(x in any::<u64>()) {
        let u = unit_interval(x);
        prop_assert!((0.0..1.0).contains(&u));
    }
}

// ---------------------------------------------------------------------
// Analysis: bounds stay within [0, 1] and respect monotonicity.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn completeness_bounds_are_probabilities(
        n in 10u64..5000,
        k in 2.0f64..16.0,
        b in 0.25f64..6.0,
    ) {
        let c1 = analysis::c1(n, k, b);
        let ci = analysis::ci_lower_bound(n as f64, k, b);
        let inc = analysis::c1_incompleteness(n, k, b);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!((0.0..=1.0).contains(&ci));
        prop_assert!((0.0..=1.0).contains(&inc));
        prop_assert!((c1 + inc - 1.0).abs() < 1e-9 || inc < 1e-12);
    }

    #[test]
    fn epidemic_noninfected_decreases(m in 2.0f64..10_000.0, b in 0.1f64..8.0) {
        let mut prev = analysis::noninfected(m, b, 0.0);
        for t in 1..10 {
            let x = analysis::noninfected(m, b, t as f64);
            prop_assert!(x <= prev + 1e-12);
            prop_assert!(x >= 0.0);
            prev = x;
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end protocol invariants (small groups; proptest-driven
// parameters with a reduced case count because each case is a full
// simulation).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn protocol_never_double_counts_and_stays_in_unit_range(
        n in 8usize..120,
        k in 2u8..6,
        ucastl in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let mut cfg = ExperimentConfig::paper_defaults().with_n(n).with_ucastl(ucastl);
        cfg.k = k;
        cfg.pf = 0.0;
        // Tagged::try_merge panics inside the protocol if a vote would
        // be double counted, so simply completing the run checks the
        // invariant; completeness is additionally a probability.
        let report = run_hiergossip::<Average>(&cfg, seed % 1_000_003);
        for o in &report.outcomes {
            if let MemberOutcome::Completed { completeness, .. } = o {
                prop_assert!((0.0..=1.0).contains(completeness));
            }
        }
        prop_assert!(report.mean_incompleteness() >= 0.0);
        prop_assert!(report.messages() > 0);
    }

    #[test]
    fn estimates_bounded_by_vote_range(
        n in 8usize..100,
        seed in any::<u64>(),
    ) {
        // Average of votes in [lo, hi] must stay inside [lo, hi] for
        // every member, complete or not (no-double-counting implies the
        // estimate is a true average of a vote subset).
        let mut cfg = ExperimentConfig::paper_defaults().with_n(n);
        cfg.vote = VoteSpec::Uniform { lo: 40.0, hi: 60.0 };
        let report = run_hiergossip::<Average>(&cfg, seed % 1_000_003);
        for o in &report.outcomes {
            if let MemberOutcome::Completed { value, .. } = o {
                prop_assert!((40.0..=60.0).contains(value), "estimate {value} out of range");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire codec fuzz: decoding arbitrary bytes must never panic, and
// encode→decode must round-trip.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Average::decode(&mut bytes.as_slice());
        let _ = Sum::decode(&mut bytes.as_slice());
        let _ = Min::decode(&mut bytes.as_slice());
        let _ = Max::decode(&mut bytes.as_slice());
        let _ = Count::decode(&mut bytes.as_slice());
        let _ = Histogram16::decode(&mut bytes.as_slice());
        let _ = TopK::decode(&mut bytes.as_slice());
        let _ = MeanVar::decode(&mut bytes.as_slice());
    }

    #[test]
    fn wire_roundtrip_average(votes in votes_strategy()) {
        let a: Average = fold(&votes);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        prop_assert_eq!(buf.len(), a.wire_size());
        let d = Average::decode(&mut buf.as_slice()).unwrap();
        prop_assert!((d.summary() - a.summary()).abs() < 1e-9);
    }

    #[test]
    fn wire_roundtrip_topk(votes in votes_strategy()) {
        let t: TopK = fold(&votes);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let d = TopK::decode(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(d, t);
    }
}
