//! Real network, real sockets: the same protocol state machine that the
//! simulator evaluates, running as 64 threads gossiping over localhost
//! UDP with 20% injected message loss.
//!
//! This is the deployment shape of the paper's system: each member is
//! an independent process/thread with only a socket, the well-known
//! hash, and an approximate `N` — nothing else is shared.
//!
//! Run with: `cargo run --release --example real_network`

use std::time::Instant;

use gridagg::aggregate::Aggregate;
use gridagg::core::scope::ScopeIndex;
use gridagg::prelude::*;
use gridagg_runtime::{run_group, RuntimeConfig};

fn main() -> std::io::Result<()> {
    let n = 64;
    let hierarchy = Hierarchy::for_group(4, n).unwrap();
    let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(hierarchy, 2001));
    // sensor readings around 70°
    let votes: Vec<f64> = (0..n)
        .map(|i| 70.0 + ((i * 37) % 11) as f64 - 5.0)
        .collect();
    let truth = votes.iter().sum::<f64>() / n as f64;

    println!("{n} members on localhost UDP, 20% injected loss, 5ms rounds\n");
    let started = Instant::now();
    let outcomes = run_group::<Average>(
        votes,
        index,
        HierGossipConfig::default(),
        RuntimeConfig {
            inject_loss: 0.20,
            ..Default::default()
        },
    )?;
    let elapsed = started.elapsed();

    let finished = outcomes.iter().filter(|o| o.estimate.is_some()).count();
    let mean_completeness: f64 = outcomes.iter().map(|o| o.completeness(n)).sum::<f64>() / n as f64;
    let sample = outcomes
        .iter()
        .find_map(|o| o.estimate.as_ref())
        .map_or(f64::NAN, |e| {
            e.aggregate().map_or(f64::NAN, Aggregate::summary)
        });
    let max_rounds = outcomes.iter().map(|o| o.rounds).max().unwrap_or(0);

    println!("finished members    : {finished}/{n}");
    println!("mean completeness   : {mean_completeness:.4}");
    println!("true average        : {truth:.4}");
    println!("sample estimate     : {sample:.4}");
    println!("slowest member      : {max_rounds} rounds");
    println!("wall clock          : {elapsed:?}");
    println!(
        "\nthe exact state machine the simulator benchmarks — `HierGossip` —\n\
         just aggregated a real group over real sockets."
    );
    Ok(())
}
