//! Real network, real sockets: the same protocol state machine that the
//! simulator evaluates, running as a *multiplexed* cluster — 64 members
//! sharing 8 UDP sockets and a couple of worker threads on localhost,
//! with 20% injected message loss at the socket boundary.
//!
//! This is the deployment shape of the paper's system: each member has
//! only the well-known hash and an approximate `N` — here many members
//! share each endpoint, demultiplexed by a per-frame member-id header.
//!
//! Run with: `cargo run --release --example real_network`

use gridagg::aggregate::Aggregate;
use gridagg::core::scope::ScopeIndex;
use gridagg::prelude::*;
use gridagg_runtime::{run_cluster, RuntimeConfig, RuntimeError};

fn main() -> Result<(), RuntimeError> {
    let n = 64;
    let hierarchy = Hierarchy::for_group(4, n).unwrap();
    let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(hierarchy, 2001));
    // sensor readings around 70°
    let votes: Vec<f64> = (0..n)
        .map(|i| 70.0 + ((i * 37) % 11) as f64 - 5.0)
        .collect();
    let truth = votes.iter().sum::<f64>() / n as f64;

    // The multiplexing budget is enforced, not discovered by hanging:
    // ask for more members than `sockets x members_per_socket` allows
    // and the launch fails loudly with the arithmetic in the message.
    let starved = RuntimeConfig {
        sockets: 2,
        members_per_socket: 16,
        ..Default::default()
    };
    match run_cluster::<Average>(
        votes.clone(),
        index.clone(),
        HierGossipConfig::default(),
        starved,
    ) {
        Err(e @ RuntimeError::BudgetExceeded { .. }) => {
            println!("over-budget launch refused as expected:\n  {e}\n");
        }
        Err(e) => return Err(e),
        Ok(_) => unreachable!("64 members cannot fit a 32-member budget"),
    }

    let cfg = RuntimeConfig {
        sockets: 8,
        ..Default::default()
    }
    .with_uniform_loss(0.20);
    println!(
        "{n} members multiplexed over {} localhost sockets, 20% injected loss, 5ms rounds\n",
        cfg.sockets
    );
    let run = run_cluster::<Average>(votes, index, HierGossipConfig::default(), cfg)?;
    let outcomes = &run.outcomes;
    let r = &run.report;

    let finished = outcomes.iter().filter(|o| o.estimate.is_some()).count();
    let sample = outcomes
        .iter()
        .find_map(|o| o.estimate.as_ref())
        .map_or(f64::NAN, |e| {
            e.aggregate().map_or(f64::NAN, Aggregate::summary)
        });

    println!("finished members    : {finished}/{n}");
    println!("mean completeness   : {:.4}", r.mean_completeness);
    println!("true average        : {truth:.4}");
    println!("sample estimate     : {sample:.4}");
    println!("slowest member      : {} rounds", r.max_rounds_seen);
    println!("wall clock          : {:?}", r.wall);
    println!(
        "wire traffic        : {} frames in {} datagrams ({:.2} frames/datagram, {} batched)",
        r.stats.frames_sent,
        r.stats.datagrams_sent,
        r.frames_per_datagram(),
        r.stats.batched_sends
    );
    println!(
        "fault injection     : {} frames dropped at the socket boundary",
        r.stats.injected_drops
    );
    println!(
        "\nthe exact state machine the simulator benchmarks — `HierGossip` —\n\
         just aggregated a real group over a shared socket pool."
    );
    Ok(())
}
