//! Airplane-wing sensor field (the paper's motivating example, §1).
//!
//! "A few thousand sensors might be installed on the wing of an
//! airplane ... the network of airplane wing sensors might calculate
//! the average temperature of all sensors on the wing, triggering a
//! coolant release at certain sensors if this average temperature is
//! above some threshold."
//!
//! We lay 1024 sensors on a jittered grid (the wing), use the
//! *topologically aware* hash so grid boxes are physical neighbourhoods
//! (§6.1 / Figure 3), and aggregate mean *and* maximum temperature in
//! one run each, then apply the coolant-release rule.
//!
//! Run with: `cargo run --release --example airplane_wing`

use gridagg::prelude::*;

const COOLANT_THRESHOLD: f64 = 75.0;

fn main() {
    let mut cfg = ExperimentConfig::paper_defaults().with_n(1024);
    cfg.topo_aware = true; // grid boxes = physical wing regions
    cfg.vote = VoteSpec::Gaussian {
        mean: 72.0,
        std_dev: 4.0,
    };
    cfg.ucastl = 0.10; // short-range radio, mild loss

    println!("wing: 1024 sensors, topologically-aware grid boxes, 10% loss\n");

    let avg_report = run_hiergossip::<Average>(&cfg, 7);
    println!(
        "average temperature  : {:.2}°  (true {:.2}°, completeness {:.4})",
        estimate_value(&avg_report),
        avg_report.true_value,
        avg_report.mean_completeness().unwrap_or(0.0)
    );

    let max_report = run_hiergossip::<Max>(&cfg, 7);
    println!(
        "hottest sensor       : {:.2}°  (true {:.2}°)",
        estimate_value(&max_report),
        max_report.true_value
    );

    if estimate_value(&avg_report) > COOLANT_THRESHOLD {
        println!("\n=> average above {COOLANT_THRESHOLD}°: release coolant everywhere");
    } else if estimate_value(&max_report) > COOLANT_THRESHOLD + 10.0 {
        println!("\n=> local hotspot detected: release coolant at the hottest region");
    } else {
        println!("\n=> wing within thermal limits ({COOLANT_THRESHOLD}° threshold)");
    }

    // The §6.1 payoff of the topologically aware hash: early phases stay
    // local, so most traffic crosses only short distances.
    println!(
        "\nlink load: {:.2} hops/message, long-haul share {:.1}%",
        avg_report.net.total_hops as f64 / avg_report.net.sent.max(1) as f64,
        100.0 * avg_report.net.long_haul_share(4)
    );
}

/// Median member estimate (members may differ slightly in completeness).
fn estimate_value(report: &RunReport) -> f64 {
    let mut values: Vec<f64> = report
        .outcomes
        .iter()
        .filter_map(|o| match o {
            MemberOutcome::Completed { value, .. } => Some(*value),
            _ => None,
        })
        .collect();
    values.sort_by(f64::total_cmp);
    values.get(values.len() / 2).copied().unwrap_or(f64::NAN)
}
