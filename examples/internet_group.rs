//! Internet-scale process group: protocol shoot-out.
//!
//! The §4–§6 comparison as a single runnable scenario: N processes over
//! a lossy wide-area network, one composable query ("how many members
//! are up, and what is the p50 load?"), every protocol implemented by
//! this repository.
//!
//! Run with: `cargo run --release --example internet_group`

use gridagg::prelude::*;

fn main() {
    let n = 1024;
    let cfg = ExperimentConfig::paper_defaults().with_n(n);
    println!("N={n} processes, ucastl=0.25, pf=0.001 per round\n");

    let runs = 5;
    let rows: Vec<(&str, Summary)> = vec![
        (
            "hierarchical gossip",
            summarize(&run_many(runs, 1, |s| run_hiergossip::<Average>(&cfg, s))),
        ),
        (
            "flood (all-to-all)",
            summarize(&run_many(runs, 1, |s| {
                run_flood::<Average>(&cfg, FloodConfig::default(), s)
            })),
        ),
        (
            "centralized leader",
            summarize(&run_many(runs, 1, |s| {
                run_centralized::<Average>(&cfg, CentralizedConfig::for_group(n), s)
            })),
        ),
        (
            "leader election",
            summarize(&run_many(runs, 1, |s| {
                run_leader_election::<Average>(&cfg, LeaderElectionConfig::default(), s)
            })),
        ),
        (
            "flat gossip",
            summarize(&run_many(runs, 1, |s| run_flatgossip::<Average>(&cfg, s))),
        ),
    ];

    println!(
        "{:<22} {:>15} {:>10} {:>10} {:>12}",
        "protocol", "incompleteness", "msgs/N", "rounds", "rel. error"
    );
    for (name, s) in &rows {
        println!(
            "{:<22} {:>15.3e} {:>10.1} {:>10.1} {:>12.2e}",
            name,
            s.mean_incompleteness,
            s.mean_messages / n as f64,
            s.mean_rounds,
            s.mean_value_error
        );
    }

    // A second query over the same machinery: median load via the
    // constant-size histogram aggregate.
    let hist = run_hiergossip::<Histogram16>(&cfg, 9);
    println!(
        "\nmedian load (histogram aggregate): ≈{:.1} (completeness {:.4})",
        hist.outcomes
            .iter()
            .find_map(|o| match o {
                MemberOutcome::Completed { value, .. } => Some(*value),
                _ => None,
            })
            .unwrap_or(f64::NAN),
        hist.mean_completeness().unwrap_or(0.0)
    );
    println!(
        "\ntakeaway (paper §§4-6): only the hierarchical gossip protocol is\n\
         simultaneously complete under loss, polylog in time, and O(N·polylog)\n\
         in messages; each baseline sacrifices at least one of the three."
    );
}
