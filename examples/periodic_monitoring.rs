//! Periodic aggregation: tracking a drifting global quantity — first
//! with the paper's monotone-shrink periodic mode, then with the
//! churn-tolerant continuous service (members join, leave, crash, and
//! recover between epochs).
//!
//! §2: "Our discussion considers only one run of the aggregation
//! protocol, but this can be extended to one which periodically
//! calculate[s] the global aggregate." Here the wing slowly heats up
//! (+1.5°/epoch drift plus sensor noise) while the membership churns,
//! and the group re-aggregates every epoch — the estimate tracks the
//! moving truth, and the hierarchy re-derives itself from the current
//! up-membership each epoch.
//!
//! Run with: `cargo run --release --example periodic_monitoring`

use gridagg::core::continuous::{run_continuous, ContinuousOptions, ContinuousProtocol};
use gridagg::core::periodic::{run_periodic, EpochReport, VoteProcess};
use gridagg::group::membership::ChurnModel;
use gridagg::prelude::*;

fn main() {
    let mut cfg = ExperimentConfig::paper_defaults().with_n(256);
    cfg.pf = 0.002; // members keep dying between and during epochs
    cfg.vote = VoteSpec::Gaussian {
        mean: 60.0,
        std_dev: 3.0,
    };
    let drift = VoteProcess::Drift {
        rate: 1.5,
        noise: 0.5,
    };

    // --- the paper's periodic mode: crash-without-recovery only ---
    let outcome = run_periodic::<Average>(&cfg, drift, 8, 42);
    println!("periodic (crash-only, §7 model):");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>9} {:>14}",
        "epoch", "alive", "truth", "estimate", "error", "completeness"
    );
    for e in &outcome.epochs {
        println!(
            "{:>6} {:>6} {:>10.3} {:>10.3} {:>9.4} {:>14.4}",
            e.epoch,
            e.report.n,
            e.true_value,
            e.median_estimate(),
            e.tracking_error(),
            e.report.mean_completeness().unwrap_or(0.0),
        );
    }
    let max_err = outcome
        .epochs
        .iter()
        .map(EpochReport::tracking_error)
        .fold(0.0f64, f64::max);
    println!(
        "\nthe estimate follows a +1.5°/epoch drift with max error {max_err:.3}° while \n\
         the population shrinks from {} to {} members (collapsed early: {})\n",
        outcome.epochs.first().map_or(0, |e| e.report.n),
        outcome.epochs.last().map_or(0, |e| e.report.n),
        outcome.collapsed(),
    );

    // --- the continuous service: joins, leaves, crashes, recoveries ---
    let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
    opts.epochs = 8;
    opts.votes = drift;
    opts.churn = ChurnModel {
        join_rate: 2.0,
        leave_prob: 0.01,
        crash_prob: 0.02,
        recover_prob: 0.5,
    };
    let cont = run_continuous(&cfg, &opts, 42);
    println!("continuous (churn: joins/leaves/crashes/recoveries):");
    println!(
        "{:>6} {:>5} {:>3} {:>3} {:>3} {:>3} {:>10} {:>10} {:>9} {:>14}",
        "epoch", "up", "+j", "-l", "-c", "+r", "truth", "estimate", "error", "completeness"
    );
    for e in &cont.epochs {
        println!(
            "{:>6} {:>5} {:>3} {:>3} {:>3} {:>3} {:>10.3} {:>10.3} {:>9.4} {:>14.4}",
            e.epoch,
            e.up,
            e.joins,
            e.leaves,
            e.crashes,
            e.recoveries,
            e.true_value,
            e.estimate,
            e.tracking_error(),
            e.completeness,
        );
    }
    println!(
        "\nunder churn the view heals every epoch: recovered and newly joined members\n\
         re-enter the hierarchy, and each epoch publishes a completeness score against\n\
         the epoch's true membership"
    );
}
