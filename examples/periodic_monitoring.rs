//! Periodic aggregation: tracking a drifting global quantity.
//!
//! §2: "Our discussion considers only one run of the aggregation
//! protocol, but this can be extended to one which periodically
//! calculate[s] the global aggregate." Here the wing slowly heats up
//! (+1.5°/epoch drift plus sensor noise) while members keep crashing,
//! and the group re-aggregates every epoch — the estimate tracks the
//! moving truth, and the hierarchy automatically re-derives itself from
//! the shrinking surviving population.
//!
//! Run with: `cargo run --release --example periodic_monitoring`

use gridagg::core::periodic::{run_periodic, EpochReport, VoteProcess};
use gridagg::prelude::*;

fn main() {
    let mut cfg = ExperimentConfig::paper_defaults().with_n(256);
    cfg.pf = 0.002; // members keep dying between and during epochs
    cfg.vote = VoteSpec::Gaussian {
        mean: 60.0,
        std_dev: 3.0,
    };

    let epochs = run_periodic::<Average>(
        &cfg,
        VoteProcess::Drift {
            rate: 1.5,
            noise: 0.5,
        },
        8,
        42,
    );

    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>9} {:>14}",
        "epoch", "alive", "truth", "estimate", "error", "completeness"
    );
    for e in &epochs {
        println!(
            "{:>6} {:>6} {:>10.3} {:>10.3} {:>9.4} {:>14.4}",
            e.epoch,
            e.report.n,
            e.true_value,
            e.median_estimate(),
            e.tracking_error(),
            e.report.mean_completeness().unwrap_or(0.0),
        );
    }
    let max_err = epochs
        .iter()
        .map(EpochReport::tracking_error)
        .fold(0.0f64, f64::max);
    println!(
        "\nthe estimate follows a +1.5°/epoch drift with max error {max_err:.3}° while \n\
         the population shrinks from {} to {} members",
        epochs.first().map_or(0, |e| e.report.n),
        epochs.last().map_or(0, |e| e.report.n),
    );
}
