//! Quickstart: the paper's default experiment in a dozen lines.
//!
//! Runs Hierarchical Gossiping once over a 200-member group with 25%
//! unicast message loss and 0.1%-per-round crashes (§7 defaults), then
//! prints what every self-managing application wants to know: the
//! estimated global average and how complete it is.
//!
//! Run with: `cargo run --example quickstart`

use gridagg::prelude::*;

fn main() {
    let cfg = ExperimentConfig::paper_defaults();
    println!(
        "group: N={}  K={}  M={}  C={}  ucastl={}  pf={}",
        cfg.n, cfg.k, cfg.fanout, cfg.round_factor, cfg.ucastl, cfg.pf
    );

    let report = run_hiergossip::<Average>(&cfg, 42);

    println!("true average vote     : {:.4}", report.true_value);
    println!(
        "members completed     : {}/{} ({} crashed)",
        report.completed(),
        report.n,
        report.crashed()
    );
    println!(
        "mean completeness     : {:.6}",
        report.mean_completeness().unwrap_or(0.0)
    );
    println!(
        "mean incompleteness   : {:.2e}",
        report.mean_incompleteness()
    );
    println!(
        "mean relative error   : {:.2e}",
        report.mean_value_error().unwrap_or(f64::NAN)
    );
    println!(
        "rounds to completion  : {}",
        report.last_completion().unwrap_or(0)
    );
    println!(
        "messages (complexity) : {} (≈ {:.1} per member)",
        report.messages(),
        report.messages() as f64 / report.n as f64
    );
    println!(
        "network               : {} sent, {} delivered, {} lost",
        report.net.sent, report.net.delivered, report.net.dropped_loss
    );
}
