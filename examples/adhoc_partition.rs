//! Smart dust under a soft partition (§7, Figure 9).
//!
//! "A few hundred thousand smart dust computers might be randomly
//! dropped on an inhospitable terrain" — and terrain means correlated
//! failures: the group splits into two halves with heavy cross-half
//! loss. The paper's Figure 9 shows completeness degrades *gracefully*
//! rather than collapsing. This example sweeps the partition severity
//! and also shows the failure mode of the centralized baseline on the
//! same network.
//!
//! Run with: `cargo run --release --example adhoc_partition`

use gridagg::prelude::*;

fn main() {
    println!("200 dust motes, background loss 25%, partition at the ravine\n");
    println!(
        "{:>8} {:>18} {:>18}",
        "partl", "hiergossip inc.", "centralized inc."
    );
    for partl in [0.3, 0.5, 0.7, 0.9] {
        let cfg = ExperimentConfig::paper_defaults().with_partl(partl);
        let runs = 10;
        let hier = summarize(&run_many(runs, 100, |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        }));
        let central = summarize(&run_many(runs, 100, |seed| {
            run_centralized::<Average>(&cfg, CentralizedConfig::for_group(cfg.n), seed)
        }));
        println!(
            "{:>8} {:>18.4e} {:>18.4e}",
            partl, hier.mean_incompleteness, central.mean_incompleteness
        );
    }
    println!(
        "\nhierarchical gossip degrades gracefully; the centralized leader\n\
         loses roughly the whole far half of the group (its gather and\n\
         dissemination both cross the partition once, with no redundancy)."
    );
}
